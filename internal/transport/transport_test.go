package transport

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"zht/internal/wire"
)

// echoHandler returns the request's value, tagging the key so tests
// can verify the handler actually ran.
func echoHandler(req *wire.Request) *wire.Response {
	return &wire.Response{
		Status: wire.StatusOK,
		Value:  append([]byte("echo:"+req.Key+":"), req.Value...),
	}
}

// callersUnderTest builds each transport configuration against a
// freshly started echo server and returns (caller, addr, cleanup).
func callersUnderTest(t *testing.T) map[string]func() (Caller, string) {
	t.Helper()
	return map[string]func() (Caller, string){
		"tcp-cached": func() (Caller, string) {
			srv, err := ListenTCP("127.0.0.1:0", echoHandler, EventDriven)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv.Close() })
			c := NewTCPClient(TCPClientOptions{ConnCache: true})
			t.Cleanup(func() { c.Close() })
			return c, srv.Addr()
		},
		"tcp-uncached": func() (Caller, string) {
			srv, err := ListenTCP("127.0.0.1:0", echoHandler, EventDriven)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv.Close() })
			c := NewTCPClient(TCPClientOptions{ConnCache: false})
			t.Cleanup(func() { c.Close() })
			return c, srv.Addr()
		},
		"tcp-spawn": func() (Caller, string) {
			srv, err := ListenTCP("127.0.0.1:0", echoHandler, SpawnPerRequest)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv.Close() })
			c := NewTCPClient(TCPClientOptions{ConnCache: true})
			t.Cleanup(func() { c.Close() })
			return c, srv.Addr()
		},
		"udp": func() (Caller, string) {
			srv, err := ListenUDP("127.0.0.1:0", echoHandler)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv.Close() })
			c := NewUDPClient(UDPClientOptions{})
			t.Cleanup(func() { c.Close() })
			return c, srv.Addr()
		},
		"inproc": func() (Caller, string) {
			reg := NewRegistry()
			srv, err := reg.Listen("node-a", echoHandler)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv.Close() })
			return reg.NewClient(), srv.Addr()
		},
	}
}

func TestRoundTripAllTransports(t *testing.T) {
	for name, mk := range callersUnderTest(t) {
		mk := mk
		t.Run(name, func(t *testing.T) {
			c, addr := mk()
			resp, err := c.Call(addr, &wire.Request{Op: wire.OpInsert, Key: "k1", Value: []byte("hello")})
			if err != nil {
				t.Fatal(err)
			}
			if resp.Status != wire.StatusOK || string(resp.Value) != "echo:k1:hello" {
				t.Errorf("got %v %q", resp.Status, resp.Value)
			}
		})
	}
}

func TestSequentialCallsReuseConnection(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", echoHandler, EventDriven)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewTCPClient(TCPClientOptions{ConnCache: true})
	defer c.Close()
	for i := 0; i < 50; i++ {
		if _, err := c.Call(srv.Addr(), &wire.Request{Op: wire.OpPing}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.CachedConns(); got != 1 {
		t.Errorf("cached conns = %d, want 1 (sequential calls must reuse)", got)
	}
}

func TestConcurrentCallsAllTransports(t *testing.T) {
	for name, mk := range callersUnderTest(t) {
		mk := mk
		t.Run(name, func(t *testing.T) {
			c, addr := mk()
			const workers, per = 16, 50
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						key := fmt.Sprintf("w%d-i%d", w, i)
						resp, err := c.Call(addr, &wire.Request{Op: wire.OpLookup, Key: key, Value: []byte(key)})
						if err != nil {
							errs <- err
							return
						}
						want := "echo:" + key + ":" + key
						if string(resp.Value) != want {
							errs <- fmt.Errorf("cross-talk: got %q want %q", resp.Value, want)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

func TestLRUEviction(t *testing.T) {
	var srvs []*TCPServer
	for i := 0; i < 5; i++ {
		s, err := ListenTCP("127.0.0.1:0", echoHandler, EventDriven)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		srvs = append(srvs, s)
	}
	c := NewTCPClient(TCPClientOptions{ConnCache: true, MaxCached: 3})
	defer c.Close()
	for _, s := range srvs {
		if _, err := c.Call(s.Addr(), &wire.Request{Op: wire.OpPing}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.CachedConns(); got != 3 {
		t.Errorf("cached conns = %d, want cap 3", got)
	}
	// Oldest destinations evicted, but calls to them still succeed
	// (they just redial).
	if _, err := c.Call(srvs[0].Addr(), &wire.Request{Op: wire.OpPing}); err != nil {
		t.Fatal(err)
	}
}

func TestStaleCachedConnectionRedials(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", echoHandler, EventDriven)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	c := NewTCPClient(TCPClientOptions{ConnCache: true, Timeout: 2 * time.Second})
	defer c.Close()
	if _, err := c.Call(addr, &wire.Request{Op: wire.OpPing}); err != nil {
		t.Fatal(err)
	}
	// Restart the server on the same address; the cached conn is now
	// dead and the client must transparently redial.
	srv.Close()
	srv2, err := ListenTCP(addr, echoHandler, EventDriven)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	resp, err := c.Call(addr, &wire.Request{Op: wire.OpPing})
	if err != nil {
		t.Fatalf("call after server restart: %v", err)
	}
	if resp.Status != wire.StatusOK {
		t.Errorf("status = %v", resp.Status)
	}
}

func TestUnreachableDestination(t *testing.T) {
	tcp := NewTCPClient(TCPClientOptions{Timeout: 300 * time.Millisecond})
	defer tcp.Close()
	if _, err := tcp.Call("127.0.0.1:1", &wire.Request{Op: wire.OpPing}); err == nil {
		t.Error("tcp call to closed port succeeded")
	}
	reg := NewRegistry()
	if _, err := reg.NewClient().Call("ghost", &wire.Request{Op: wire.OpPing}); err == nil {
		t.Error("inproc call to unregistered endpoint succeeded")
	}
}

func TestUDPTimeoutAndRetry(t *testing.T) {
	// A UDP server that drops the first datagram of each sequence
	// exercises the retransmission path.
	var mu sync.Mutex
	seen := map[uint64]bool{}
	srv, err := ListenUDP("127.0.0.1:0", func(req *wire.Request) *wire.Response {
		mu.Lock()
		first := !seen[req.Seq]
		seen[req.Seq] = true
		mu.Unlock()
		if first {
			// Simulate datagram loss by stalling past the client
			// deadline: the client will retransmit with the same seq.
			time.Sleep(300 * time.Millisecond)
		}
		return &wire.Response{Status: wire.StatusOK, Value: []byte("pong")}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewUDPClient(UDPClientOptions{Timeout: 100 * time.Millisecond, Retries: 3})
	defer c.Close()
	resp, err := c.Call(srv.Addr(), &wire.Request{Op: wire.OpPing})
	if err != nil {
		t.Fatalf("retransmission failed: %v", err)
	}
	if string(resp.Value) != "pong" {
		t.Errorf("value = %q", resp.Value)
	}
}

func TestUDPTimeoutNoServer(t *testing.T) {
	c := NewUDPClient(UDPClientOptions{Timeout: 50 * time.Millisecond, Retries: 1})
	defer c.Close()
	start := time.Now()
	_, err := c.Call("127.0.0.1:9", &wire.Request{Op: wire.OpPing})
	if err == nil {
		t.Fatal("call to dead UDP port succeeded")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("timeout took %v; retries not bounded", d)
	}
}

func TestUDPLargeRequestRejected(t *testing.T) {
	c := NewUDPClient(UDPClientOptions{})
	defer c.Close()
	_, err := c.Call("127.0.0.1:9", &wire.Request{Op: wire.OpInsert, Key: "k", Value: bytes.Repeat([]byte{1}, maxDatagram+1)})
	if err == nil {
		t.Error("oversized datagram accepted")
	}
}

func TestInprocFailureInjection(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Listen("a", echoHandler); err != nil {
		t.Fatal(err)
	}
	c := reg.NewClient()
	if _, err := c.Call("a", &wire.Request{Op: wire.OpPing}); err != nil {
		t.Fatal(err)
	}
	reg.SetDown("a", true)
	if _, err := c.Call("a", &wire.Request{Op: wire.OpPing}); err == nil {
		t.Error("call to downed endpoint succeeded")
	}
	reg.SetDown("a", false)
	if _, err := c.Call("a", &wire.Request{Op: wire.OpPing}); err != nil {
		t.Errorf("call after revival failed: %v", err)
	}
}

func TestInprocDuplicateBind(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Listen("a", echoHandler); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Listen("a", echoHandler); err == nil {
		t.Error("duplicate bind succeeded")
	}
}

func TestInprocLatencyInjection(t *testing.T) {
	reg := NewRegistry()
	reg.Listen("a", echoHandler)
	reg.SetLatency(func(string) time.Duration { return 30 * time.Millisecond })
	c := reg.NewClient()
	start := time.Now()
	if _, err := c.Call("a", &wire.Request{Op: wire.OpPing}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("latency injection ineffective: %v", d)
	}
}

func TestInprocCloseUnblocks(t *testing.T) {
	reg := NewRegistry()
	srv, _ := reg.Listen("a", echoHandler)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if _, err := reg.NewClient().Call("a", &wire.Request{Op: wire.OpPing}); err == nil {
		t.Error("call to closed endpoint succeeded")
	}
	// Address is reusable after close.
	if _, err := reg.Listen("a", echoHandler); err != nil {
		t.Errorf("rebind after close: %v", err)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", echoHandler, EventDriven)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	u, err := ListenUDP("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	u.Close()
	if err := u.Close(); err != nil {
		t.Errorf("udp double close: %v", err)
	}
}

func TestMalformedFrameDropsConnection(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", echoHandler, EventDriven)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Handshake with garbage; the server must drop us without
	// affecting later well-formed clients.
	c := NewTCPClient(TCPClientOptions{Timeout: time.Second})
	defer c.Close()
	raw := NewTCPClient(TCPClientOptions{Timeout: time.Second})
	defer raw.Close()
	cc, err := raw.dial(srv.Addr(), time.Now().Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	cc.bw.Write([]byte{5, 'X', 'X', 'X', 'X', 'X'})
	cc.bw.Flush()
	cc.c.Close()
	if _, err := c.Call(srv.Addr(), &wire.Request{Op: wire.OpPing}); err != nil {
		t.Fatalf("server unusable after malformed frame: %v", err)
	}
}

func TestLargeValueOverTCP(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", echoHandler, EventDriven)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewTCPClient(TCPClientOptions{ConnCache: true})
	defer c.Close()
	big := bytes.Repeat([]byte{0xab}, 4<<20)
	resp, err := c.Call(srv.Addr(), &wire.Request{Op: wire.OpInsert, Key: "big", Value: big})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Value) != len(big)+len("echo:big:") {
		t.Errorf("big value round trip lost bytes: %d", len(resp.Value))
	}
}

func BenchmarkTransportRoundTrip(b *testing.B) {
	val := bytes.Repeat([]byte{'v'}, 132)
	configs := []struct {
		name string
		mk   func(b *testing.B) (Caller, string, func())
	}{
		{"tcp-cached", func(b *testing.B) (Caller, string, func()) {
			srv, err := ListenTCP("127.0.0.1:0", echoHandler, EventDriven)
			if err != nil {
				b.Fatal(err)
			}
			c := NewTCPClient(TCPClientOptions{ConnCache: true})
			return c, srv.Addr(), func() { c.Close(); srv.Close() }
		}},
		{"tcp-uncached", func(b *testing.B) (Caller, string, func()) {
			srv, err := ListenTCP("127.0.0.1:0", echoHandler, EventDriven)
			if err != nil {
				b.Fatal(err)
			}
			c := NewTCPClient(TCPClientOptions{ConnCache: false})
			return c, srv.Addr(), func() { c.Close(); srv.Close() }
		}},
		{"tcp-spawnreq", func(b *testing.B) (Caller, string, func()) {
			srv, err := ListenTCP("127.0.0.1:0", echoHandler, SpawnPerRequest)
			if err != nil {
				b.Fatal(err)
			}
			c := NewTCPClient(TCPClientOptions{ConnCache: true})
			return c, srv.Addr(), func() { c.Close(); srv.Close() }
		}},
		{"udp", func(b *testing.B) (Caller, string, func()) {
			srv, err := ListenUDP("127.0.0.1:0", echoHandler)
			if err != nil {
				b.Fatal(err)
			}
			c := NewUDPClient(UDPClientOptions{})
			return c, srv.Addr(), func() { c.Close(); srv.Close() }
		}},
		{"inproc", func(b *testing.B) (Caller, string, func()) {
			reg := NewRegistry()
			srv, err := reg.Listen("bench", echoHandler)
			if err != nil {
				b.Fatal(err)
			}
			return reg.NewClient(), "bench", func() { srv.Close() }
		}},
	}
	for _, cfg := range configs {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			c, addr, cleanup := cfg.mk(b)
			defer cleanup()
			req := &wire.Request{Op: wire.OpInsert, Key: "key-0000000001", Value: val}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Call(addr, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
