package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"zht/internal/metrics"
	"zht/internal/wire"
)

// In-process transport: a registry of named endpoints dispatched by
// direct function call. It lets tests and benchmarks deploy hundreds
// of ZHT instances inside one process — playing the role the Blue
// Gene/P allocation played for the paper — and supports fault
// injection (downed endpoints, extra latency, partitions).

// Registry is an in-process network. The zero value is not usable;
// call NewRegistry.
type Registry struct {
	mu        sync.RWMutex
	endpoints map[string]*InprocServer
	down      map[string]bool
	// latency, when set, is invoked per call to simulate network
	// delay between src (may be empty) and dst.
	latency func(dst string) time.Duration
	calls   atomic.Int64
	cmet    cliMetrics
}

// NewRegistry creates an empty in-process network.
func NewRegistry() *Registry {
	return &Registry{
		endpoints: make(map[string]*InprocServer),
		down:      make(map[string]bool),
	}
}

// SetMetrics points the registry's caller-side instruments
// (zht.transport.calls, bytes) at reg. Call before issuing traffic;
// it is not synchronized with concurrent Calls.
func (r *Registry) SetMetrics(reg *metrics.Registry) {
	r.cmet = newCliMetrics(reg)
}

// SetLatency installs a synthetic per-call latency function (nil to
// disable).
func (r *Registry) SetLatency(f func(dst string) time.Duration) {
	r.mu.Lock()
	r.latency = f
	r.mu.Unlock()
}

// SetDown marks an endpoint unreachable (true) or reachable (false),
// simulating a node failure without tearing down its state.
func (r *Registry) SetDown(addr string, down bool) {
	r.mu.Lock()
	r.down[addr] = down
	r.mu.Unlock()
}

// Calls reports the total number of calls dispatched through the
// registry.
func (r *Registry) Calls() int64 { return r.calls.Load() }

// InprocServer is an endpoint in a Registry.
type InprocServer struct {
	reg     *Registry
	addr    string
	handler Handler
	gate    *gate
	met     srvMetrics
	closed  atomic.Bool
	// inflight tracks handler executions so Close can drain.
	inflight sync.WaitGroup
}

// Listen registers a new endpoint under addr.
func (r *Registry) Listen(addr string, h Handler, opts ...ServerOption) (*InprocServer, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.endpoints[addr]; ok {
		return nil, fmt.Errorf("transport: inproc address %q already bound", addr)
	}
	o := resolveOptions(opts)
	s := &InprocServer{reg: r, addr: addr, handler: h, gate: newGate(o), met: newSrvMetrics(o.Metrics)}
	r.endpoints[addr] = s
	return s, nil
}

// Addr returns the endpoint's registered name.
func (s *InprocServer) Addr() string { return s.addr }

// Close unregisters the endpoint and waits for in-flight handlers.
func (s *InprocServer) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.reg.mu.Lock()
	delete(s.reg.endpoints, s.addr)
	s.reg.mu.Unlock()
	s.inflight.Wait()
	return nil
}

// InprocClient issues calls within a Registry.
type InprocClient struct {
	reg *Registry
}

// NewClient creates a Caller for this registry.
func (r *Registry) NewClient() *InprocClient { return &InprocClient{reg: r} }

// Call implements Caller by direct dispatch. Requests and responses
// are deep-copied across the boundary so callers and handlers cannot
// alias each other's buffers, matching real-transport semantics. The
// request's Budget (remaining deadline) bounds synthetic latency and
// handler execution; a handler still running at the deadline keeps
// running server-side, but the caller observes ErrTimeout — matching
// what a datagram client sees when the ack arrives too late.
func (c *InprocClient) Call(addr string, req *wire.Request) (*wire.Response, error) {
	deadline := callDeadline(req, 0)
	c.reg.mu.RLock()
	srv := c.reg.endpoints[addr]
	down := c.reg.down[addr]
	lat := c.reg.latency
	c.reg.mu.RUnlock()
	if down || srv == nil || srv.closed.Load() {
		return nil, fmt.Errorf("%w: inproc %q", ErrUnreachable, addr)
	}
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		return nil, fmt.Errorf("%w: inproc %q: budget exhausted", ErrTimeout, addr)
	}
	if lat != nil {
		if d := lat(addr); d > 0 {
			if !deadline.IsZero() {
				if rem := time.Until(deadline); d >= rem {
					// The request (or its ack) lands past the
					// deadline; the caller observes a timeout.
					time.Sleep(rem)
					return nil, fmt.Errorf("%w: inproc %q", ErrTimeout, addr)
				}
			}
			time.Sleep(d)
		}
	}
	c.reg.calls.Add(1)
	c.reg.cmet.calls.Inc()
	// Register as in-flight under the registry lock: Close deletes
	// the endpoint under the same lock before waiting, so this Add
	// either strictly precedes the Wait or the endpoint is gone —
	// never the Add/Wait-at-zero race the WaitGroup contract forbids.
	c.reg.mu.RLock()
	live := c.reg.endpoints[addr] == srv
	if live {
		srv.inflight.Add(1)
	}
	c.reg.mu.RUnlock()
	if !live {
		return nil, fmt.Errorf("%w: inproc %q", ErrUnreachable, addr)
	}
	srv.met.requests.Inc()
	if !srv.gate.tryAcquire() {
		srv.met.sheds.Inc()
		srv.inflight.Done()
		return srv.gate.busy(req.Seq), nil
	}
	// Serialize through the wire codec: this keeps in-proc behaviour
	// byte-identical to the real transports (copy semantics, field
	// normalization) at modest cost. The decoded request aliases the
	// pooled encode buffer; both are recycled once the handler
	// returns, exactly like a TCP frame.
	enc := wire.EncodeRequest(wire.GetBuffer(), req)
	srv.met.bytesIn.Add(int64(len(enc)))
	c.reg.cmet.bytesOut.Add(int64(len(enc)))
	dreq, err := wire.DecodeRequestPooled(enc)
	if err != nil {
		wire.PutBuffer(enc)
		srv.gate.release()
		srv.inflight.Done()
		return nil, err
	}
	if deadline.IsZero() {
		srv.met.inflight.Inc()
		resp := srv.handler(dreq)
		srv.met.inflight.Dec()
		srv.gate.release()
		srv.inflight.Done()
		wire.PutRequest(dreq)
		wire.PutBuffer(enc)
		return c.copyResponse(srv, resp, req.Seq)
	}
	done := make(chan *wire.Response, 1)
	go func() {
		srv.met.inflight.Inc()
		resp := srv.handler(dreq)
		srv.met.inflight.Dec()
		srv.gate.release()
		srv.inflight.Done()
		wire.PutRequest(dreq)
		wire.PutBuffer(enc)
		done <- resp
	}()
	timer := getTimer(time.Until(deadline))
	defer putTimer(timer)
	select {
	case resp := <-done:
		return c.copyResponse(srv, resp, req.Seq)
	case <-timer.C:
		return nil, fmt.Errorf("%w: inproc %q: handler exceeded budget", ErrTimeout, addr)
	}
}

// copyResponse deep-copies a handler response through the wire codec,
// stamps the caller's sequence number, and accounts the response
// bytes to both sides. The handler's response is recycled after
// encoding (the transport owns it; see Handler); the caller's copy
// aliases rEnc, which therefore stays with the GC.
func (c *InprocClient) copyResponse(srv *InprocServer, resp *wire.Response, seq uint64) (*wire.Response, error) {
	rEnc := wire.EncodeResponse(nil, resp)
	wire.PutResponse(resp)
	srv.met.bytesOut.Add(int64(len(rEnc)))
	c.reg.cmet.bytesIn.Add(int64(len(rEnc)))
	dresp, err := wire.DecodeResponsePooled(rEnc)
	if err != nil {
		return nil, err
	}
	dresp.Seq = seq
	return dresp, nil
}

// CallBatch implements Caller by dispatching one OpBatch envelope; the
// serialize-through-the-codec semantics of Call apply to the whole
// envelope, so sub-requests and sub-responses are copied exactly as a
// real transport would.
func (c *InprocClient) CallBatch(addr string, reqs []*wire.Request) ([]*wire.Response, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	c.reg.cmet.batches.Inc()
	c.reg.cmet.batchSubs.Observe(int64(len(reqs)))
	return EnvelopeCallBatch(c, addr, reqs)
}

// Close implements Caller.
func (c *InprocClient) Close() error { return nil }
