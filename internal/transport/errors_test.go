package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"zht/internal/wire"
)

// The transport error taxonomy: every caller maps failures onto the
// same two sentinels — ErrUnreachable for destinations that cannot
// be contacted, ErrTimeout for deadlines (including the request's
// Budget) that expire before an ack arrives. The client's failure
// detector and circuit breaker depend on this consistency.

// taxonomyTransports starts one server per transport whose handler
// blocks until release is closed, and returns short-timeout callers.
func taxonomyTransports(t *testing.T, h Handler) map[string]func() (Caller, string) {
	t.Helper()
	return map[string]func() (Caller, string){
		"tcp": func() (Caller, string) {
			srv, err := ListenTCP("127.0.0.1:0", h, EventDriven)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv.Close() })
			c := NewTCPClient(TCPClientOptions{Timeout: 150 * time.Millisecond})
			t.Cleanup(func() { c.Close() })
			return c, srv.Addr()
		},
		"udp": func() (Caller, string) {
			srv, err := ListenUDP("127.0.0.1:0", h)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv.Close() })
			c := NewUDPClient(UDPClientOptions{Timeout: 50 * time.Millisecond, Retries: 1})
			t.Cleanup(func() { c.Close() })
			return c, srv.Addr()
		},
		"inproc": func() (Caller, string) {
			reg := NewRegistry()
			if _, err := reg.Listen("node-a", h); err != nil {
				t.Fatal(err)
			}
			// No server Close in cleanup: a hung handler would block
			// the drain; the registry dies with the test process.
			return reg.NewClient(), "node-a"
		},
	}
}

func TestDownEndpointIsUnreachable(t *testing.T) {
	// TCP/UDP: a port nothing listens on. Inproc: an endpoint marked
	// down plus a name never bound.
	reg := NewRegistry()
	if _, err := reg.Listen("node-a", echoHandler); err != nil {
		t.Fatal(err)
	}
	reg.SetDown("node-a", true)
	cases := map[string]func() (Caller, string){
		"tcp": func() (Caller, string) {
			c := NewTCPClient(TCPClientOptions{Timeout: 200 * time.Millisecond})
			t.Cleanup(func() { c.Close() })
			return c, "127.0.0.1:1" // reserved port: dial refused
		},
		"udp": func() (Caller, string) {
			c := NewUDPClient(UDPClientOptions{Timeout: 50 * time.Millisecond, Retries: 1})
			t.Cleanup(func() { c.Close() })
			return c, "127.0.0.1:1"
		},
		"inproc-down": func() (Caller, string) {
			return reg.NewClient(), "node-a"
		},
		"inproc-unbound": func() (Caller, string) {
			return reg.NewClient(), "node-zzz"
		},
	}
	for name, mk := range cases {
		t.Run(name, func(t *testing.T) {
			c, addr := mk()
			_, err := c.Call(addr, &wire.Request{Op: wire.OpPing})
			// A dead UDP "server" may surface as ICMP port-unreachable
			// (ErrUnreachable) or as silence (ErrTimeout) depending on
			// the stack; both are down-endpoint verdicts. TCP and
			// inproc must say ErrUnreachable.
			if name == "udp" {
				if !errors.Is(err, ErrUnreachable) && !errors.Is(err, ErrTimeout) {
					t.Fatalf("got %v, want ErrUnreachable or ErrTimeout", err)
				}
				return
			}
			if !errors.Is(err, ErrUnreachable) {
				t.Fatalf("got %v, want ErrUnreachable", err)
			}
		})
	}
}

func TestHungHandlerIsTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	hang := func(req *wire.Request) *wire.Response {
		<-release
		return &wire.Response{Status: wire.StatusOK}
	}
	for name, mk := range taxonomyTransports(t, hang) {
		t.Run(name, func(t *testing.T) {
			c, addr := mk()
			// Inproc enforces deadlines only through the request
			// budget; give every transport the same one.
			req := &wire.Request{Op: wire.OpPing, Budget: uint64(100 * time.Millisecond)}
			start := time.Now()
			_, err := c.Call(addr, req)
			if !errors.Is(err, ErrTimeout) {
				t.Fatalf("got %v, want ErrTimeout", err)
			}
			if el := time.Since(start); el > 2*time.Second {
				t.Fatalf("timed out only after %v", el)
			}
		})
	}
}

func TestExpiredBudgetIsTimeout(t *testing.T) {
	var handled sync.Map
	h := func(req *wire.Request) *wire.Response {
		handled.Store(req.Key, true)
		return &wire.Response{Status: wire.StatusOK}
	}
	for name, mk := range taxonomyTransports(t, h) {
		t.Run(name, func(t *testing.T) {
			c, addr := mk()
			req := &wire.Request{Op: wire.OpInsert, Key: name, Budget: 1} // 1ns: already expired
			_, err := c.Call(addr, req)
			if !errors.Is(err, ErrTimeout) {
				t.Fatalf("got %v, want ErrTimeout", err)
			}
			if _, ran := handled.Load(name); ran {
				t.Fatal("handler ran despite expired budget")
			}
		})
	}
}

// gateTransports starts each transport with a one-slot admission
// gate in front of a handler that parks until released.
func TestAdmissionGateShedsWithBusy(t *testing.T) {
	gateOpts := []ServerOption{WithMaxInflight(1), WithRetryAfter(3 * time.Millisecond)}
	cases := map[string]func(h Handler) (Caller, string){
		"tcp": func(h Handler) (Caller, string) {
			srv, err := ListenTCP("127.0.0.1:0", h, EventDriven, gateOpts...)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv.Close() })
			c := NewTCPClient(TCPClientOptions{Timeout: 5 * time.Second})
			t.Cleanup(func() { c.Close() })
			return c, srv.Addr()
		},
		"udp": func(h Handler) (Caller, string) {
			srv, err := ListenUDP("127.0.0.1:0", h, gateOpts...)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv.Close() })
			c := NewUDPClient(UDPClientOptions{Timeout: 5 * time.Second, Retries: -1})
			t.Cleanup(func() { c.Close() })
			return c, srv.Addr()
		},
		"inproc": func(h Handler) (Caller, string) {
			reg := NewRegistry()
			if _, err := reg.Listen("node-a", h, gateOpts...); err != nil {
				t.Fatal(err)
			}
			return reg.NewClient(), "node-a"
		},
	}
	for name, mk := range cases {
		t.Run(name, func(t *testing.T) {
			release := make(chan struct{})
			entered := make(chan struct{}, 16)
			slow := func(req *wire.Request) *wire.Response {
				entered <- struct{}{}
				<-release
				return &wire.Response{Status: wire.StatusOK}
			}
			c, addr := mk(slow)
			// Park one request in the handler, filling the gate.
			first := make(chan error, 1)
			go func() {
				_, err := c.Call(addr, &wire.Request{Op: wire.OpPing})
				first <- err
			}()
			<-entered
			// The second concurrent request must be shed immediately.
			resp, err := c.Call(addr, &wire.Request{Op: wire.OpLookup, Key: "x"})
			if err != nil {
				t.Fatalf("shed call errored: %v", err)
			}
			if resp.Status != wire.StatusBusy {
				t.Fatalf("got status %s, want busy", resp.Status)
			}
			if resp.RetryAfter == 0 {
				t.Fatal("busy response carries no retry-after hint")
			}
			// Release the parked request; the slot frees and new
			// requests are admitted again.
			close(release)
			if err := <-first; err != nil {
				t.Fatalf("parked call errored: %v", err)
			}
			deadline := time.Now().Add(2 * time.Second)
			for {
				resp, err := c.Call(addr, &wire.Request{Op: wire.OpPing})
				if err == nil && resp.Status == wire.StatusOK {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("gate never re-admitted: resp=%+v err=%v", resp, err)
				}
				<-entered // drain the re-admitted ping's marker
			}
		})
	}
}
