package transport

import (
	"sync/atomic"

	"zht/internal/metrics"
	"zht/internal/wire"
)

// Frame-buffer pool for the TCP reader/demux loops and the UDP
// datagram path. Kept separate from wire's message-scale buffer pool
// so the two size classes don't pollute each other: frames and
// datagrams run larger (UDP reads want maxDatagram capacity) than
// encode scratch. Same shape as wire's pool — a bounded channel
// freelist whose slice headers move by value, so neither get nor put
// allocates — and the same single-owner rule: a frame is either
// handed on or returned, never both. The pool honors
// wire.SetPoolPoison for use-after-release regression tests.
const (
	frameBufCap    = 4 << 10
	maxPooledFrame = 64 << 10
	frameFreeLimit = 256
)

var frameFree = make(chan []byte, frameFreeLimit)

// bufReuse counts frame buffers served from the pool instead of the
// allocator (zht.transport.buf.reuse); nil when metrics are off.
var bufReuse atomic.Pointer[metrics.Counter]

// EnableBufMetrics points the package-global frame pool's reuse
// counter at reg (nil turns accounting off). Last registry wins.
func EnableBufMetrics(reg *metrics.Registry) {
	if reg == nil {
		bufReuse.Store(nil)
		return
	}
	bufReuse.Store(reg.Counter("zht.transport.buf.reuse"))
}

func getFrameBuf() []byte {
	select {
	case b := <-frameFree:
		if c := bufReuse.Load(); c != nil {
			c.Inc()
		}
		return b
	default:
		return make([]byte, 0, frameBufCap)
	}
}

func putFrameBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledFrame {
		return
	}
	b = b[:cap(b)]
	if wire.PoolPoisonEnabled() {
		for i := range b {
			b[i] = wire.PoisonByte
		}
	}
	select {
	case frameFree <- b[:0]:
	default:
	}
}
