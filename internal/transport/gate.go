package transport

import (
	"errors"
	"net"
	"time"

	"zht/internal/metrics"
	"zht/internal/wire"
)

// Server-side overload protection: a bounded in-flight admission gate
// shared by the TCP, UDP, and in-process servers. When the configured
// number of requests is already executing, the server sheds new
// arrivals immediately with wire.StatusBusy plus a retry-after hint
// instead of queueing them — bounding memory and tail latency under
// overload, and keeping the reader loops responsive so the server can
// still answer pings and shed cheaply (load shedding beats collapse).

// DefaultRetryAfter is the backoff hint attached to StatusBusy
// responses when the server does not configure one.
const DefaultRetryAfter = 2 * time.Millisecond

// ServerOptions tunes robustness features shared by every transport's
// server. The zero value disables them all (no admission limit).
type ServerOptions struct {
	// MaxInflight bounds concurrently executing handlers; excess
	// requests are answered with StatusBusy. 0 means unlimited.
	MaxInflight int
	// RetryAfter is the backoff hint sent with StatusBusy.
	// 0 means DefaultRetryAfter.
	RetryAfter time.Duration
	// Metrics, when non-nil, receives the server-side instruments
	// (zht.server.* — requests, in-flight gauge, sheds, bytes,
	// connection counts). Nil disables them.
	Metrics *metrics.Registry
}

// ServerOption mutates ServerOptions (variadic-option pattern so the
// Listen constructors keep their existing signatures).
type ServerOption func(*ServerOptions)

// WithMaxInflight bounds concurrently executing handlers to n.
func WithMaxInflight(n int) ServerOption {
	return func(o *ServerOptions) { o.MaxInflight = n }
}

// WithRetryAfter sets the StatusBusy backoff hint.
func WithRetryAfter(d time.Duration) ServerOption {
	return func(o *ServerOptions) { o.RetryAfter = d }
}

// WithServerMetrics points the server's instruments at reg.
func WithServerMetrics(reg *metrics.Registry) ServerOption {
	return func(o *ServerOptions) { o.Metrics = reg }
}

// resolveOptions applies an option list to the zero ServerOptions.
func resolveOptions(opts []ServerOption) ServerOptions {
	var o ServerOptions
	for _, f := range opts {
		f(&o)
	}
	return o
}

// srvMetrics is the per-server instrument set, shared by the TCP,
// UDP, and in-process servers. All fields are nil (no-op) when
// metrics are disabled; servers on one registry aggregate.
type srvMetrics struct {
	requests *metrics.Counter // zht.server.requests
	inflight *metrics.Gauge   // zht.server.inflight
	sheds    *metrics.Counter // zht.server.sheds
	bytesIn  *metrics.Counter // zht.server.bytes_in
	bytesOut *metrics.Counter // zht.server.bytes_out
	conns    *metrics.Gauge   // zht.server.conns
}

func newSrvMetrics(reg *metrics.Registry) srvMetrics {
	return srvMetrics{
		requests: reg.Counter("zht.server.requests"),
		inflight: reg.Gauge("zht.server.inflight"),
		sheds:    reg.Counter("zht.server.sheds"),
		bytesIn:  reg.Counter("zht.server.bytes_in"),
		bytesOut: reg.Counter("zht.server.bytes_out"),
		conns:    reg.Gauge("zht.server.conns"),
	}
}

// cliMetrics is the caller-side instrument set shared by the TCP,
// UDP, and in-process clients. All fields are nil (no-op) when
// metrics are disabled.
type cliMetrics struct {
	calls       *metrics.Counter   // zht.transport.calls
	dials       *metrics.Counter   // zht.transport.dials
	cachedHits  *metrics.Counter   // zht.transport.cached_conns
	retransmits *metrics.Counter   // zht.transport.retransmits
	bytesIn     *metrics.Counter   // zht.transport.bytes_in
	bytesOut    *metrics.Counter   // zht.transport.bytes_out
	muxInflight *metrics.Gauge     // zht.transport.mux.inflight
	batches     *metrics.Counter   // zht.transport.batches
	batchSubs   *metrics.Histogram // zht.transport.batch.subs
}

func newCliMetrics(reg *metrics.Registry) cliMetrics {
	return cliMetrics{
		calls:       reg.Counter("zht.transport.calls"),
		dials:       reg.Counter("zht.transport.dials"),
		cachedHits:  reg.Counter("zht.transport.cached_conns"),
		retransmits: reg.Counter("zht.transport.retransmits"),
		bytesIn:     reg.Counter("zht.transport.bytes_in"),
		bytesOut:    reg.Counter("zht.transport.bytes_out"),
		muxInflight: reg.Gauge("zht.transport.mux.inflight"),
		batches:     reg.Counter("zht.transport.batches"),
		batchSubs:   reg.Histogram("zht.transport.batch.subs"),
	}
}

// gate is the admission counter. A nil *gate admits everything.
type gate struct {
	slots      chan struct{}
	retryAfter time.Duration
}

// newGate builds a gate from resolved options; nil when no limit is
// set.
func newGate(o ServerOptions) *gate {
	if o.MaxInflight <= 0 {
		return nil
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = DefaultRetryAfter
	}
	return &gate{
		slots:      make(chan struct{}, o.MaxInflight),
		retryAfter: o.RetryAfter,
	}
}

// tryAcquire claims an execution slot; false means the server is
// saturated and the request must be shed.
func (g *gate) tryAcquire() bool {
	if g == nil {
		return true
	}
	select {
	case g.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// release returns a slot.
func (g *gate) release() {
	if g != nil {
		<-g.slots
	}
}

// busy builds the shed response for a request.
func (g *gate) busy(seq uint64) *wire.Response {
	return &wire.Response{
		Status:     wire.StatusBusy,
		Seq:        seq,
		RetryAfter: uint64(g.retryAfter),
	}
}

// classify maps a low-level network error into the transport error
// taxonomy: deadline-style failures become ErrTimeout, everything
// else ErrUnreachable. Keeping the mapping in one place makes the
// taxonomy consistent across TCP, UDP, and in-process callers, which
// the client's failure detector depends on.
func classify(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return ErrTimeout
	}
	return ErrUnreachable
}

// callDeadline resolves the absolute deadline for one call: the
// transport's own timeout bound by the request's remaining budget
// (wire.Request.Budget), whichever expires first. A zero transport
// timeout means the budget alone governs; no budget and no timeout
// yields a zero time (no deadline).
func callDeadline(req *wire.Request, timeout time.Duration) time.Time {
	var d time.Time
	if timeout > 0 {
		d = time.Now().Add(timeout)
	}
	if req.Budget > 0 {
		b := time.Now().Add(time.Duration(req.Budget))
		if d.IsZero() || b.Before(d) {
			d = b
		}
	}
	return d
}
