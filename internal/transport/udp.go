package transport

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"zht/internal/metrics"
	"zht/internal/wire"
)

// UDP transport: acknowledge-message based (§III.F) — every request
// datagram is answered by a response datagram; the sender retransmits
// on timeout. Connectionless communication avoids the connection
// establishment cost that motivates the paper's interest in UDP at
// extreme scales.

// maxDatagram bounds UDP message size. ZHT's micro-benchmark payloads
// (15 B keys, 132 B values) fit trivially; larger values should use
// TCP.
const maxDatagram = 60 * 1024

// UDPServer serves ZHT requests over UDP.
type UDPServer struct {
	pc      *net.UDPConn
	handler Handler
	gate    *gate
	met     srvMetrics
	wg      sync.WaitGroup
	closed  atomic.Bool
}

// ListenUDP starts a UDP server on addr (":0" for ephemeral).
// Options configure the admission gate (WithMaxInflight) shedding
// excess load as StatusBusy.
func ListenUDP(addr string, h Handler, opts ...ServerOption) (*UDPServer, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	pc, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	o := resolveOptions(opts)
	s := &UDPServer{pc: pc, handler: h, gate: newGate(o), met: newSrvMetrics(o.Metrics)}
	s.wg.Add(1)
	go s.loop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *UDPServer) Addr() string { return s.pc.LocalAddr().String() }

// udpWorkers bounds concurrent handler executions per server. The
// read loop itself stays single-threaded (event-driven), but handlers
// run off-loop: a ZHT handler may issue nested server-to-server RPCs
// (replication, migration), and two servers handling each other's
// requests inline would deadlock until their clients' retransmission
// timeouts fired.
const udpWorkers = 256

func (s *UDPServer) loop() {
	defer s.wg.Done()
	sem := make(chan struct{}, udpWorkers)
	buf := make([]byte, maxDatagram)
	for {
		n, from, err := s.pc.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		s.met.bytesIn.Add(int64(n))
		req, err := wire.DecodeRequestPooled(buf[:n])
		if err != nil {
			continue // drop malformed datagrams
		}
		s.met.requests.Inc()
		// The decoded request aliases buf, which the read loop reuses
		// for the next datagram: move Value/Aux into one pooled
		// scratch buffer that lives exactly as long as the handler.
		var scratch []byte
		if len(req.Value)+len(req.Aux) > 0 {
			scratch = getFrameBuf()
			lv := len(req.Value)
			scratch = append(scratch, req.Value...)
			scratch = append(scratch, req.Aux...)
			if lv > 0 {
				req.Value = scratch[:lv]
			}
			if len(req.Aux) > 0 {
				req.Aux = scratch[lv:]
			}
		}
		dst := *from
		if !s.gate.tryAcquire() {
			// Admission gate saturated: shed from the read loop with
			// StatusBusy instead of queueing behind the worker pool.
			s.met.sheds.Inc()
			busy := s.gate.busy(req.Seq)
			out := wire.EncodeResponse(wire.GetBuffer(), busy)
			wire.PutResponse(busy)
			wire.PutRequest(req)
			putFrameBuf(scratch)
			s.met.bytesOut.Add(int64(len(out)))
			s.pc.WriteToUDP(out, &dst)
			wire.PutBuffer(out)
			continue
		}
		sem <- struct{}{}
		s.wg.Add(1)
		go func(req *wire.Request, scratch []byte) {
			defer s.wg.Done()
			defer func() { <-sem }()
			defer s.gate.release()
			s.met.inflight.Inc()
			resp := s.handler(req)
			s.met.inflight.Dec()
			resp.Seq = req.Seq
			wire.PutRequest(req)
			putFrameBuf(scratch)
			out := wire.EncodeResponse(wire.GetBuffer(), resp)
			if len(out) > maxDatagram {
				out = wire.EncodeResponse(out[:0], &wire.Response{
					Status: wire.StatusError, Seq: resp.Seq,
					Err: "transport: response exceeds datagram limit",
				})
			}
			wire.PutResponse(resp)
			s.met.bytesOut.Add(int64(len(out)))
			s.pc.WriteToUDP(out, &dst)
			wire.PutBuffer(out)
		}(req, scratch)
	}
}

// Close stops the server.
func (s *UDPServer) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	err := s.pc.Close()
	s.wg.Wait()
	return err
}

// UDPClientOptions configures a UDP client.
type UDPClientOptions struct {
	// Timeout is the per-attempt ack deadline. 0 means
	// DefaultUDPTimeout.
	Timeout time.Duration
	// Retries is the number of retransmissions after the first
	// attempt. 0 means DefaultUDPRetries; negative means none.
	Retries int
	// Metrics, when non-nil, receives the caller-side instruments
	// (zht.transport.* — calls, retransmits, bytes).
	Metrics *metrics.Registry
}

// Defaults for UDPClientOptions zero values.
const (
	DefaultUDPTimeout = 500 * time.Millisecond
	DefaultUDPRetries = 3
)

// UDPClient issues acknowledge-based UDP requests.
type UDPClient struct {
	opts UDPClientOptions
	met  cliMetrics
	seq  atomic.Uint64

	mu     sync.Mutex
	socks  map[string][]*net.UDPConn // idle sockets per destination
	closed bool
}

// NewUDPClient creates a client.
func NewUDPClient(opts UDPClientOptions) *UDPClient {
	if opts.Timeout == 0 {
		opts.Timeout = DefaultUDPTimeout
	}
	if opts.Retries == 0 {
		opts.Retries = DefaultUDPRetries
	}
	return &UDPClient{opts: opts, met: newCliMetrics(opts.Metrics), socks: make(map[string][]*net.UDPConn)}
}

// Call implements Caller: send, await the matching ack, retransmit on
// timeout. Retransmission stops at the request's remaining budget
// (wire.Request.Budget) even when attempts remain.
func (c *UDPClient) Call(addr string, req *wire.Request) (*wire.Response, error) {
	c.met.calls.Inc()
	r := *req
	r.Seq = c.seq.Add(1)
	out := wire.EncodeRequest(wire.GetBuffer(), &r)
	defer func() { wire.PutBuffer(out) }()
	if len(out) > maxDatagram {
		return nil, fmt.Errorf("transport: request of %d bytes exceeds datagram limit", len(out))
	}
	deadline := callDeadline(req, 0)
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		return nil, fmt.Errorf("%w: budget exhausted before send", ErrTimeout)
	}
	conn, err := c.getSock(addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	// Datagram receive buffer: pooled, full datagram capacity.
	buf := getFrameBuf()
	if cap(buf) < maxDatagram {
		buf = make([]byte, maxDatagram)
	}
	buf = buf[:maxDatagram]
	defer func() { putFrameBuf(buf) }()
	attempts := 1 + c.opts.Retries
	if c.opts.Retries < 0 {
		attempts = 1
	}
	for a := 0; a < attempts; a++ {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			c.putSock(addr, conn)
			return nil, ErrTimeout
		}
		if a > 0 {
			c.met.retransmits.Inc()
		}
		c.met.bytesOut.Add(int64(len(out)))
		if _, err := conn.Write(out); err != nil {
			conn.Close()
			return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
		}
		attemptDeadline := time.Now().Add(c.opts.Timeout)
		if !deadline.IsZero() && deadline.Before(attemptDeadline) {
			attemptDeadline = deadline
		}
		conn.SetReadDeadline(attemptDeadline)
		for {
			n, err := conn.Read(buf)
			if err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					break // retransmit
				}
				conn.Close()
				return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
			}
			c.met.bytesIn.Add(int64(n))
			resp, derr := wire.DecodeResponsePooled(buf[:n])
			if derr != nil || resp.Seq != r.Seq {
				if derr == nil {
					wire.PutResponse(resp)
				}
				continue // stray or stale datagram; keep waiting
			}
			// Copy fields that alias buf before reuse.
			resp.Value = append([]byte(nil), resp.Value...)
			resp.Table = append([]byte(nil), resp.Table...)
			if len(resp.Value) == 0 {
				resp.Value = nil
			}
			if len(resp.Table) == 0 {
				resp.Table = nil
			}
			c.putSock(addr, conn)
			return resp, nil
		}
	}
	c.putSock(addr, conn)
	return nil, ErrTimeout
}

// CallBatch implements Caller by packing sub-requests into OpBatch
// envelopes, splitting at the datagram budget: each chunk is sized so
// its encoded envelope fits in maxDatagram. Chunks are issued
// sequentially; an error fails the remainder of the batch (retriable,
// like Call — earlier chunks may have executed).
func (c *UDPClient) CallBatch(addr string, reqs []*wire.Request) ([]*wire.Response, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	c.met.batches.Inc()
	c.met.batchSubs.Observe(int64(len(reqs)))
	// Reserve headroom for the envelope header and the per-item count
	// and length prefixes.
	const slack = 64
	out := make([]*wire.Response, 0, len(reqs))
	var chunk []*wire.Request
	size := 0
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		rs, err := EnvelopeCallBatch(c, addr, chunk)
		if err != nil {
			return err
		}
		out = append(out, rs...)
		chunk = nil
		size = 0
		return nil
	}
	scratch := wire.GetBuffer()
	defer func() { wire.PutBuffer(scratch) }()
	for _, r := range reqs {
		scratch = wire.EncodeRequest(scratch[:0], r)
		n := len(scratch) + binary.MaxVarintLen64
		if n+slack > maxDatagram {
			return nil, fmt.Errorf("transport: batched request of %d bytes exceeds datagram limit", len(scratch))
		}
		if size+n+slack > maxDatagram {
			if err := flush(); err != nil {
				return nil, err
			}
		}
		chunk = append(chunk, r)
		size += n
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *UDPClient) getSock(addr string) (*net.UDPConn, error) {
	c.mu.Lock()
	if ss := c.socks[addr]; len(ss) > 0 {
		s := ss[len(ss)-1]
		c.socks[addr] = ss[:len(ss)-1]
		c.mu.Unlock()
		return s, nil
	}
	c.mu.Unlock()
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	return net.DialUDP("udp", nil, ua)
}

func (c *UDPClient) putSock(addr string, s *net.UDPConn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || len(c.socks[addr]) >= 16 {
		s.Close()
		return
	}
	c.socks[addr] = append(c.socks[addr], s)
}

// Close releases pooled sockets.
func (c *UDPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, ss := range c.socks {
		for _, s := range ss {
			s.Close()
		}
	}
	c.socks = make(map[string][]*net.UDPConn)
	return nil
}
