package transport

import (
	"fmt"
	"sync"
	"testing"

	"zht/internal/metrics"
	"zht/internal/wire"
)

// TestNoResponseAliasingAfterRelease is the end-to-end leak gate for
// the pooled request path: with buffer poisoning on, concurrent
// callers hammer an echo server and every caller retains each
// response's Value until the end. If the transport recycled a frame
// still referenced by a delivered response, a later op would overwrite
// the retained bytes — poisoning turns that into a deterministic
// mismatch. Run under -race to also catch the write/read race itself.
func TestNoResponseAliasingAfterRelease(t *testing.T) {
	wire.SetPoolPoison(true)
	defer wire.SetPoolPoison(false)

	transports := map[string]func() (Caller, string){
		"tcp": func() (Caller, string) {
			srv, err := ListenTCP("127.0.0.1:0", echoHandler, EventDriven)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv.Close() })
			c := NewTCPClient(TCPClientOptions{ConnCache: true})
			t.Cleanup(func() { c.Close() })
			return c, srv.Addr()
		},
		"udp": func() (Caller, string) {
			srv, err := ListenUDP("127.0.0.1:0", echoHandler)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv.Close() })
			c := NewUDPClient(UDPClientOptions{})
			t.Cleanup(func() { c.Close() })
			return c, srv.Addr()
		},
		"inproc": func() (Caller, string) {
			reg := NewRegistry()
			srv, err := reg.Listen("poison-node", echoHandler)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv.Close() })
			return reg.NewClient(), srv.Addr()
		},
	}
	for name, mk := range transports {
		t.Run(name, func(t *testing.T) {
			c, addr := mk()
			const workers, callsPerWorker = 8, 150
			type held struct {
				want string
				got  []byte
			}
			results := make([][]held, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < callsPerWorker; i++ {
						key := fmt.Sprintf("w%d-i%d", w, i)
						val := []byte(fmt.Sprintf("payload-%d-%d", w, i))
						resp, err := c.Call(addr, &wire.Request{Op: wire.OpLookup, Key: key, Value: val})
						if err != nil {
							t.Error(err)
							return
						}
						want := "echo:" + key + ":" + string(val)
						if string(resp.Value) != want {
							t.Errorf("immediate mismatch: got %q want %q", resp.Value, want)
							return
						}
						// Retain the response's bytes without copying:
						// the contract says they are application-owned
						// now, so nothing the transport does later may
						// touch them.
						results[w] = append(results[w], held{want: want, got: resp.Value})
					}
				}(w)
			}
			wg.Wait()
			poisoned := 0
			for _, rs := range results {
				for _, h := range rs {
					if string(h.got) != h.want {
						poisoned++
						if poisoned <= 3 {
							t.Errorf("retained response mutated after later ops: got %q want %q", h.got, h.want)
						}
					}
				}
			}
			if poisoned > 3 {
				t.Errorf("... and %d more mutated responses", poisoned-3)
			}
		})
	}
}

// TestServerFramesRecycled pins the server half of the ownership
// rule from the outside: a burst of sequential calls on one cached
// connection must drive the frame pool's reuse counter, proving read
// frames go back to the pool after each handler returns (reading the
// recycled memory directly would itself violate the contract — and
// trip the race detector — so the metric is the observable).
func TestServerFramesRecycled(t *testing.T) {
	wire.SetPoolPoison(true)
	defer wire.SetPoolPoison(false)

	reg := metrics.NewRegistry()
	EnableBufMetrics(reg)
	defer EnableBufMetrics(nil)

	handler := func(req *wire.Request) *wire.Response {
		// Copy discipline per the contract; the response must not
		// alias the request's frame.
		return &wire.Response{Status: wire.StatusOK, Value: append([]byte(nil), req.Value...)}
	}
	srv, err := ListenTCP("127.0.0.1:0", handler, EventDriven)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewTCPClient(TCPClientOptions{ConnCache: true})
	defer c.Close()

	const calls = 64
	val := []byte("frame-owned bytes")
	reuseBefore := reg.Counter("zht.transport.buf.reuse").Value()
	for i := 0; i < calls; i++ {
		resp, err := c.Call(srv.Addr(), &wire.Request{Op: wire.OpInsert, Key: "k", Value: val})
		if err != nil {
			t.Fatal(err)
		}
		if string(resp.Value) != string(val) {
			t.Fatalf("call %d: got %q want %q", i, resp.Value, val)
		}
	}
	if reuse := reg.Counter("zht.transport.buf.reuse").Value() - reuseBefore; reuse == 0 {
		t.Error("frame pool reuse counter stayed at zero across a sequential burst: frames are not being recycled")
	}
}
