package ring

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary encoding for membership tables and deltas. ZHT ships tables to
// lazily-updating clients and broadcasts deltas between managers; both
// use this compact varint format (the Google-protobuf role in the
// paper; see DESIGN.md substitutions).

var (
	tableMagic = [4]byte{'Z', 'H', 'T', 'T'}
	deltaMagic = [4]byte{'Z', 'H', 'T', 'D'}

	errBadTable = errors.New("ring: malformed table encoding")
	errBadDelta = errors.New("ring: malformed delta encoding")
)

// EncodeTable serializes a membership table.
func EncodeTable(t *Table) []byte {
	buf := make([]byte, 0, 64+len(t.Instances)*48+len(t.Owner)*2)
	buf = append(buf, tableMagic[:]...)
	buf = binary.AppendUvarint(buf, t.Epoch)
	buf = binary.AppendUvarint(buf, uint64(t.NumPartitions))
	buf = binary.AppendUvarint(buf, uint64(len(t.Instances)))
	for i, in := range t.Instances {
		buf = appendString(buf, string(in.ID))
		buf = appendString(buf, in.Addr)
		buf = appendString(buf, in.Node)
		buf = append(buf, byte(t.Status[i]))
	}
	for _, o := range t.Owner {
		buf = binary.AppendUvarint(buf, uint64(o))
	}
	return buf
}

// DecodeTable parses a table produced by EncodeTable.
func DecodeTable(b []byte) (*Table, error) {
	if len(b) < 4 || [4]byte(b[:4]) != tableMagic {
		return nil, errBadTable
	}
	b = b[4:]
	epoch, b, err := readUvarint(b)
	if err != nil {
		return nil, errBadTable
	}
	np, b, err := readUvarint(b)
	if err != nil || np == 0 || np > 1<<31 {
		return nil, errBadTable
	}
	ni, b, err := readUvarint(b)
	if err != nil || ni == 0 || ni > np {
		return nil, errBadTable
	}
	t := &Table{
		Epoch:         epoch,
		NumPartitions: int(np),
		Instances:     make([]Instance, ni),
		Status:        make([]Status, ni),
		Owner:         make([]int, np),
	}
	for i := range t.Instances {
		var id, addr, node string
		if id, b, err = readString(b); err != nil {
			return nil, errBadTable
		}
		if addr, b, err = readString(b); err != nil {
			return nil, errBadTable
		}
		if node, b, err = readString(b); err != nil {
			return nil, errBadTable
		}
		if len(b) < 1 {
			return nil, errBadTable
		}
		t.Instances[i] = Instance{ID: InstanceID(id), Addr: addr, Node: node}
		t.Status[i] = Status(b[0])
		b = b[1:]
	}
	for p := range t.Owner {
		var o uint64
		if o, b, err = readUvarint(b); err != nil {
			return nil, errBadTable
		}
		if o >= ni {
			return nil, fmt.Errorf("%w: owner index %d out of range", errBadTable, o)
		}
		t.Owner[p] = int(o)
	}
	if len(b) != 0 {
		return nil, errBadTable
	}
	// Tables arrive off the network: reject anything structurally
	// invalid (duplicate IDs, bad owner indices) rather than letting
	// it poison routing.
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", errBadTable, err)
	}
	t.buildIndex()
	return t, nil
}

// EncodeDelta serializes an incremental update.
func EncodeDelta(d Delta) []byte {
	buf := make([]byte, 0, 64)
	buf = append(buf, deltaMagic[:]...)
	buf = binary.AppendUvarint(buf, d.FromEpoch)
	if d.AddInstance != nil {
		buf = append(buf, 1)
		buf = appendString(buf, string(d.AddInstance.ID))
		buf = appendString(buf, d.AddInstance.Addr)
		buf = appendString(buf, d.AddInstance.Node)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(len(d.SetStatus)))
	for id, s := range d.SetStatus {
		buf = appendString(buf, string(id))
		buf = append(buf, byte(s))
	}
	buf = binary.AppendUvarint(buf, uint64(len(d.Reassign)))
	for p, id := range d.Reassign {
		buf = binary.AppendUvarint(buf, uint64(p))
		buf = appendString(buf, string(id))
	}
	return buf
}

// DecodeDelta parses a delta produced by EncodeDelta.
func DecodeDelta(b []byte) (Delta, error) {
	var d Delta
	if len(b) < 4 || [4]byte(b[:4]) != deltaMagic {
		return d, errBadDelta
	}
	b = b[4:]
	var err error
	if d.FromEpoch, b, err = readUvarint(b); err != nil {
		return d, errBadDelta
	}
	if len(b) < 1 {
		return d, errBadDelta
	}
	hasAdd := b[0] == 1
	b = b[1:]
	if hasAdd {
		var id, addr, node string
		if id, b, err = readString(b); err != nil {
			return d, errBadDelta
		}
		if addr, b, err = readString(b); err != nil {
			return d, errBadDelta
		}
		if node, b, err = readString(b); err != nil {
			return d, errBadDelta
		}
		d.AddInstance = &Instance{ID: InstanceID(id), Addr: addr, Node: node}
	}
	var n uint64
	if n, b, err = readUvarint(b); err != nil || n > 1<<20 {
		return d, errBadDelta
	}
	if n > 0 {
		d.SetStatus = make(map[InstanceID]Status, n)
	}
	for i := uint64(0); i < n; i++ {
		var id string
		if id, b, err = readString(b); err != nil {
			return d, errBadDelta
		}
		if len(b) < 1 {
			return d, errBadDelta
		}
		d.SetStatus[InstanceID(id)] = Status(b[0])
		b = b[1:]
	}
	if n, b, err = readUvarint(b); err != nil || n > 1<<31 {
		return d, errBadDelta
	}
	if n > 0 {
		d.Reassign = make(map[int]InstanceID, n)
	}
	for i := uint64(0); i < n; i++ {
		var p uint64
		var id string
		if p, b, err = readUvarint(b); err != nil {
			return d, errBadDelta
		}
		if id, b, err = readString(b); err != nil {
			return d, errBadDelta
		}
		d.Reassign[int(p)] = InstanceID(id)
	}
	if len(b) != 0 {
		return d, errBadDelta
	}
	return d, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errors.New("ring: short uvarint")
	}
	return v, b[n:], nil
}

func readString(b []byte) (string, []byte, error) {
	n, rest, err := readUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(rest)) < n {
		return "", nil, errors.New("ring: short string")
	}
	return string(rest[:n]), rest[n:], nil
}
