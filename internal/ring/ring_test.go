package ring

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"zht/internal/hashing"
)

func mkInstances(k, perNode int) []Instance {
	var out []Instance
	for n := 0; n < k; n++ {
		for i := 0; i < perNode; i++ {
			out = append(out, Instance{
				ID:   InstanceID(fmt.Sprintf("uuid-%d-%d", n, i)),
				Addr: fmt.Sprintf("node%d:%d", n, 5000+i),
				Node: fmt.Sprintf("node%d", n),
			})
		}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, mkInstances(1, 1)); err == nil {
		t.Error("want error for zero partitions")
	}
	if _, err := New(10, nil); err == nil {
		t.Error("want error for no instances")
	}
	if _, err := New(2, mkInstances(4, 1)); err == nil {
		t.Error("want error when instances exceed partitions")
	}
	dup := mkInstances(2, 1)
	dup[1].ID = dup[0].ID
	if _, err := New(10, dup); err == nil {
		t.Error("want error for duplicate IDs")
	}
	empty := mkInstances(1, 1)
	empty[0].ID = ""
	if _, err := New(10, empty); err == nil {
		t.Error("want error for empty ID")
	}
}

func TestBalancedAssignment(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{1024, 4}, {1000, 7}, {16, 16}, {1 << 20, 64}} {
		tab, err := New(tc.n, mkInstances(tc.k, 1))
		if err != nil {
			t.Fatal(err)
		}
		load := tab.Load()
		min, max := tc.n, 0
		for _, l := range load {
			if l < min {
				min = l
			}
			if l > max {
				max = l
			}
		}
		if max-min > 1 {
			t.Errorf("n=%d k=%d: partition load imbalance %d..%d", tc.n, tc.k, min, max)
		}
		if err := tab.Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestContiguousOwnership(t *testing.T) {
	tab, _ := New(100, mkInstances(5, 1))
	// Bootstrap assignment must give each instance one contiguous run.
	changes := 0
	for p := 1; p < tab.NumPartitions; p++ {
		if tab.Owner[p] != tab.Owner[p-1] {
			changes++
		}
	}
	if changes != len(tab.Instances)-1 {
		t.Errorf("ownership changes %d times; want %d (contiguous blocks)", changes, len(tab.Instances)-1)
	}
}

func TestPartitionMapping(t *testing.T) {
	tab, _ := New(1024, mkInstances(8, 1))
	if got := tab.Partition(0); got != 0 {
		t.Errorf("Partition(0) = %d", got)
	}
	if got := tab.Partition(math.MaxUint64); got != 1023 {
		t.Errorf("Partition(max) = %d, want 1023", got)
	}
	// Contiguity: partition is monotone non-decreasing in the hash.
	prev := -1
	for i := 0; i < 1000; i++ {
		h := uint64(i) * (math.MaxUint64 / 1000)
		p := tab.Partition(h)
		if p < prev {
			t.Fatalf("Partition not monotone: %d then %d", prev, p)
		}
		prev = p
	}
}

func TestPartitionUniform(t *testing.T) {
	tab, _ := New(64, mkInstances(4, 1))
	counts := make([]int, 64)
	const n = 100000
	for i := 0; i < n; i++ {
		// Lookup3 has the strongest high-bit mixing of the provided
		// functions; partitioning keys on contiguous hash ranges
		// depends on exactly those bits.
		counts[tab.Partition(hashing.Lookup3(fmt.Sprintf("key-%d", i)))]++
	}
	expect := float64(n) / 64
	for p, c := range counts {
		if math.Abs(float64(c)-expect) > expect*0.3 {
			t.Errorf("partition %d holds %d keys, expect %.0f±30%%", p, c, expect)
		}
	}
}

func TestLookupMatchesOwner(t *testing.T) {
	tab, _ := New(256, mkInstances(16, 2))
	err := quick.Check(func(h uint64) bool {
		return tab.Lookup(h) == tab.OwnerOf(tab.Partition(h))
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestReplicasDistinctNodes(t *testing.T) {
	// 4 physical nodes × 2 instances: replicas must land on distinct
	// physical nodes, never the owner's node.
	tab, _ := New(64, mkInstances(4, 2))
	for p := 0; p < tab.NumPartitions; p++ {
		reps := tab.ReplicasOf(p, 2)
		if len(reps) != 2 {
			t.Fatalf("partition %d: got %d replicas, want 2", p, len(reps))
		}
		nodes := map[string]bool{tab.OwnerOf(p).Node: true}
		for _, r := range reps {
			if nodes[r.Node] {
				t.Fatalf("partition %d: replica on duplicate node %s", p, r.Node)
			}
			nodes[r.Node] = true
		}
	}
}

func TestReplicasSkipFailed(t *testing.T) {
	tab, _ := New(64, mkInstances(4, 1))
	// Fail the clockwise successor of partition 0's owner.
	owner := tab.Owner[0]
	succ := (owner + 1) % len(tab.Instances)
	tab.Status[succ] = Failed
	reps := tab.ReplicasOf(0, 2)
	for _, r := range reps {
		if r.ID == tab.Instances[succ].ID {
			t.Error("replica set includes failed instance")
		}
	}
	if len(reps) != 2 {
		t.Errorf("got %d replicas, want 2 (two alive non-owner nodes remain)", len(reps))
	}
}

func TestReplicasFewNodes(t *testing.T) {
	tab, _ := New(8, mkInstances(2, 1))
	if got := len(tab.ReplicasOf(0, 3)); got != 1 {
		t.Errorf("2-node ring: got %d replicas, want 1", got)
	}
	tab1, _ := New(8, mkInstances(1, 1))
	if got := len(tab1.ReplicasOf(0, 2)); got != 0 {
		t.Errorf("1-node ring: got %d replicas, want 0", got)
	}
}

func TestIndexOf(t *testing.T) {
	tab, _ := New(16, mkInstances(4, 1))
	for i, in := range tab.Instances {
		if got := tab.IndexOf(in.ID); got != i {
			t.Errorf("IndexOf(%q) = %d, want %d", in.ID, got, i)
		}
	}
	if tab.IndexOf("nope") != -1 {
		t.Error("IndexOf(unknown) should be -1")
	}
}

func TestApplyEpochMismatch(t *testing.T) {
	tab, _ := New(16, mkInstances(2, 1))
	_, err := tab.Apply(Delta{FromEpoch: tab.Epoch + 5})
	if err == nil {
		t.Fatal("want epoch mismatch error")
	}
}

func TestPlanJoinMovesHalf(t *testing.T) {
	tab, _ := New(64, mkInstances(2, 1))
	newcomer := Instance{ID: "uuid-new", Addr: "node9:5000", Node: "node9"}
	d, moved, err := tab.PlanJoin(newcomer)
	if err != nil {
		t.Fatal(err)
	}
	if len(moved) != 16 {
		t.Errorf("join moved %d partitions, want 16 (half of 32)", len(moved))
	}
	nt, err := tab.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if nt.Epoch != tab.Epoch+1 {
		t.Errorf("epoch = %d, want %d", nt.Epoch, tab.Epoch+1)
	}
	idx := nt.IndexOf(newcomer.ID)
	if idx < 0 {
		t.Fatal("newcomer missing from new table")
	}
	if got := len(nt.PartitionsOf(idx)); got != 16 {
		t.Errorf("newcomer owns %d partitions, want 16", got)
	}
	if err := nt.Validate(); err != nil {
		t.Error(err)
	}
	// The original table must be untouched.
	if len(tab.Instances) != 2 {
		t.Error("PlanJoin/Apply mutated the source table")
	}
}

func TestPlanJoinDuplicate(t *testing.T) {
	tab, _ := New(16, mkInstances(2, 1))
	if _, _, err := tab.PlanJoin(tab.Instances[0]); err == nil {
		t.Error("want error joining an existing member")
	}
}

func TestPlanJoinRepeatedBalances(t *testing.T) {
	// Start with 1 instance and join 7 more: the load spread should
	// stay within a factor ~2 of ideal (join always splits the
	// most-loaded node).
	tab, _ := New(1024, mkInstances(1, 1))
	for j := 0; j < 7; j++ {
		in := Instance{ID: InstanceID(fmt.Sprintf("j-%d", j)), Addr: fmt.Sprintf("n%d:1", j), Node: fmt.Sprintf("jn%d", j)}
		d, _, err := tab.PlanJoin(in)
		if err != nil {
			t.Fatal(err)
		}
		if tab, err = tab.Apply(d); err != nil {
			t.Fatal(err)
		}
	}
	load := tab.Load()
	if len(load) != 8 {
		t.Fatalf("got %d instances", len(load))
	}
	for i, l := range load {
		if l < 64 || l > 256 {
			t.Errorf("instance %d owns %d partitions; want within [64,256] of ideal 128", i, l)
		}
	}
}

func TestPlanDeparture(t *testing.T) {
	tab, _ := New(60, mkInstances(3, 1))
	dep := tab.Instances[1].ID
	d, moves, err := tab.PlanDeparture(dep)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, ps := range moves {
		total += len(ps)
	}
	if total != 20 {
		t.Errorf("departure moves %d partitions, want 20", total)
	}
	nt, err := tab.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	idx := nt.IndexOf(dep)
	if nt.Status[idx] != Departing {
		t.Errorf("status = %v, want Departing", nt.Status[idx])
	}
	if got := len(nt.PartitionsOf(idx)); got != 0 {
		t.Errorf("departing instance still owns %d partitions", got)
	}
}

func TestPlanDepartureLastNode(t *testing.T) {
	tab, _ := New(8, mkInstances(1, 1))
	if _, _, err := tab.PlanDeparture(tab.Instances[0].ID); err == nil {
		t.Error("want error departing the last instance")
	}
}

func TestPlanFailureFailsOverToFirstReplica(t *testing.T) {
	tab, _ := New(64, mkInstances(4, 1))
	victim := tab.Instances[2]
	victimParts := tab.PartitionsOf(2)
	d, err := tab.PlanFailure(victim.ID, 2)
	if err != nil {
		t.Fatal(err)
	}
	nt, err := tab.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if nt.Status[nt.IndexOf(victim.ID)] != Failed {
		t.Error("victim not marked failed")
	}
	for _, p := range victimParts {
		o := nt.OwnerOf(p)
		if o.ID == victim.ID {
			t.Fatalf("partition %d still owned by failed instance", p)
		}
		// Failover target must be the first replica computed on the
		// pre-failure ring with the victim excluded.
		scratch := tab.Clone()
		scratch.Status[2] = Failed
		want := scratch.ReplicasOf(p, 2)[0].ID
		if o.ID != want {
			t.Errorf("partition %d failed over to %q, want first replica %q", p, o.ID, want)
		}
	}
}

func TestPlanFailureUnknown(t *testing.T) {
	tab, _ := New(8, mkInstances(2, 1))
	if _, err := tab.PlanFailure("ghost", 1); err == nil {
		t.Error("want error for unknown instance")
	}
}

func TestCloneIndependence(t *testing.T) {
	tab, _ := New(16, mkInstances(2, 1))
	c := tab.Clone()
	c.Owner[0] = 1
	c.Status[0] = Failed
	c.Epoch = 99
	if tab.Owner[0] == 1 || tab.Status[0] == Failed || tab.Epoch == 99 {
		t.Error("Clone shares state with original")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tab, _ := New(16, mkInstances(2, 1))
	bad := tab.Clone()
	bad.Owner[3] = 17
	if bad.Validate() == nil {
		t.Error("want validate error for out-of-range owner")
	}
	bad2 := tab.Clone()
	bad2.Instances[1].ID = bad2.Instances[0].ID
	if bad2.Validate() == nil {
		t.Error("want validate error for duplicate ID")
	}
	bad3 := tab.Clone()
	bad3.Owner = bad3.Owner[:10]
	if bad3.Validate() == nil {
		t.Error("want validate error for truncated owner list")
	}
}

func TestStatusString(t *testing.T) {
	if Alive.String() != "alive" || Failed.String() != "failed" || Departing.String() != "departing" {
		t.Error("unexpected Status strings")
	}
	if Status(9).String() == "" {
		t.Error("unknown status should still format")
	}
}

func TestSortNetworkAware(t *testing.T) {
	ins := mkInstances(8, 1)
	coords := map[InstanceID][3]int{}
	for i, in := range ins {
		coords[in.ID] = [3]int{i % 2, (i / 2) % 2, i / 4}
	}
	SortNetworkAware(ins, func(in Instance) [3]int { return coords[in.ID] })
	// Z-order on a 2x2x2 cube: consecutive ring entries should differ
	// in few coordinates; verify total ring-walk Manhattan distance is
	// no worse than a known-good bound (Z-order gives 11 on 2x2x2).
	dist := 0
	for i := 1; i < len(ins); i++ {
		a, b := coords[ins[i-1].ID], coords[ins[i].ID]
		for d := 0; d < 3; d++ {
			dist += abs(a[d] - b[d])
		}
	}
	if dist > 11 {
		t.Errorf("Z-order ring walk distance %d, want <= 11", dist)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
