package ring

import "sync"

// DefaultDeltaLogCap is how many trailing deltas an instance retains
// for gossip catch-up. A stale peer within the window replays deltas;
// one further behind falls back to a full-table fetch — the same
// recovery path ErrEpochMismatch forces, made deterministic.
const DefaultDeltaLogCap = 64

// DeltaLog is a bounded, concurrency-safe log of encoded membership
// deltas keyed by the epoch they apply on top of (Delta.FromEpoch).
// Instances record every delta they apply and serve Since to peers
// catching up via gossip pulls (wire.OpDeltaPull). The log is
// best-effort by design: a full-table adoption skips epochs, leaving a
// gap, and Since then reports the range uncoverable so the puller
// fetches the full table instead.
type DeltaLog struct {
	mu     sync.Mutex
	cap    int
	frames map[uint64][]byte // FromEpoch → encoded delta
	max    uint64            // highest FromEpoch recorded
}

// NewDeltaLog returns a log retaining at most cap deltas; cap <= 0
// selects DefaultDeltaLogCap.
func NewDeltaLog(cap int) *DeltaLog {
	if cap <= 0 {
		cap = DefaultDeltaLogCap
	}
	return &DeltaLog{cap: cap, frames: make(map[uint64][]byte, cap)}
}

// Record stores the encoded delta applying on top of fromEpoch,
// evicting entries that fall out of the retention window. The frame is
// copied: callers may pass buffers aliasing transport decode storage.
func (l *DeltaLog) Record(fromEpoch uint64, frame []byte) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.frames[fromEpoch] = append([]byte(nil), frame...)
	if fromEpoch > l.max {
		l.max = fromEpoch
	}
	// Evict below the window. The map only ever holds ~cap entries,
	// so the sweep is O(cap) worst case and usually O(1).
	for e := range l.frames {
		if e+uint64(l.cap) <= l.max {
			delete(l.frames, e)
		}
	}
}

// Since returns the contiguous run of encoded deltas covering epochs
// [from, to) — replaying them in order advances a table at epoch
// `from` to epoch `to`. ok is false when any epoch in the range is
// missing (evicted, or skipped by a full-table adoption): the caller
// must fall back to fetching the full table.
func (l *DeltaLog) Since(from, to uint64) (frames [][]byte, ok bool) {
	if l == nil || from >= to {
		return nil, from >= to
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	frames = make([][]byte, 0, to-from)
	for e := from; e < to; e++ {
		f, present := l.frames[e]
		if !present {
			return nil, false
		}
		frames = append(frames, f)
	}
	return frames, true
}

// Len reports how many deltas the log currently retains.
func (l *DeltaLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.frames)
}
