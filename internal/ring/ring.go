// Package ring implements ZHT's ID space and membership table
// (paper §III.A–C and Figure 2).
//
// The 64-bit key namespace is evenly divided into a fixed number of
// contiguous partitions, n, chosen at bootstrap as the maximum number
// of physical nodes the deployment may ever grow to. Partitions are
// assigned to ZHT instances; each physical node runs one or more
// instances. Because n never changes, membership changes (joins,
// departures, failures) are expressed purely as partition reassignments
// in the membership table — stored key/value pairs are never rehashed.
//
// The table is versioned by an epoch counter. Managers broadcast
// incremental updates (Delta values); clients refresh lazily when a
// server tells them their table is stale (§III.C "Client Side State").
package ring

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
)

// InstanceID is the universally unique id a ZHT instance is assigned
// on the ring at bootstrap.
type InstanceID string

// Instance describes one ZHT instance: a process, identified by its
// transport address, running on some physical node.
type Instance struct {
	ID   InstanceID
	Addr string // transport address (e.g. "host:port" or in-proc name)
	Node string // physical node the instance runs on
}

// Status of an instance in the membership table.
type Status uint8

const (
	// Alive instances serve requests.
	Alive Status = iota
	// Failed instances have been tagged unreachable; their
	// partitions are served by replicas until re-replication
	// completes.
	Failed
	// Departing instances are migrating their partitions away in
	// preparation for a planned departure.
	Departing
)

func (s Status) String() string {
	switch s {
	case Alive:
		return "alive"
	case Failed:
		return "failed"
	case Departing:
		return "departing"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Table is the ZHT membership table: the complete routing state each
// client and server holds locally, enabling zero-hop request routing.
// Methods that read a Table are safe for concurrent use only if no
// goroutine mutates it; mutation happens by building a new epoch via
// Apply or the Join/Fail/Depart helpers, which operate on a copy.
type Table struct {
	// Epoch increases by one with every membership change.
	Epoch uint64
	// NumPartitions is n: fixed for the lifetime of the deployment.
	NumPartitions int
	// Instances in ring order. Ring position is the slice index.
	Instances []Instance
	// Status[i] is the state of Instances[i].
	Status []Status
	// Owner[p] is the index into Instances of the instance serving
	// partition p.
	Owner []int

	// byID indexes Instances by ID. It is built eagerly by New,
	// Apply, Clone, and DecodeTable so that published tables are
	// immutable and safe to share across goroutines; IndexOf never
	// mutates the table.
	byID map[InstanceID]int
}

// buildIndex (re)builds the ID index.
func (t *Table) buildIndex() {
	m := make(map[InstanceID]int, len(t.Instances))
	for i, in := range t.Instances {
		m[in.ID] = i
	}
	t.byID = m
}

// New builds the bootstrap membership table: numPartitions contiguous
// partitions distributed as evenly as possible over the given instances
// in ring order (each instance receives a contiguous run, mirroring the
// paper's "each physical node holds n/k partitions").
func New(numPartitions int, instances []Instance) (*Table, error) {
	if numPartitions <= 0 {
		return nil, errors.New("ring: numPartitions must be positive")
	}
	if len(instances) == 0 {
		return nil, errors.New("ring: at least one instance required")
	}
	if len(instances) > numPartitions {
		return nil, fmt.Errorf("ring: %d instances exceed %d partitions", len(instances), numPartitions)
	}
	seen := make(map[InstanceID]bool, len(instances))
	for _, in := range instances {
		if in.ID == "" {
			return nil, errors.New("ring: instance with empty ID")
		}
		if seen[in.ID] {
			return nil, fmt.Errorf("ring: duplicate instance ID %q", in.ID)
		}
		seen[in.ID] = true
	}
	t := &Table{
		Epoch:         1,
		NumPartitions: numPartitions,
		Instances:     append([]Instance(nil), instances...),
		Status:        make([]Status, len(instances)),
		Owner:         make([]int, numPartitions),
	}
	k := len(instances)
	for p := 0; p < numPartitions; p++ {
		// Contiguous block assignment: instance j owns partitions
		// [j*n/k, (j+1)*n/k).
		t.Owner[p] = p * k / numPartitions
	}
	t.buildIndex()
	return t, nil
}

// Partition maps a 64-bit hash to its partition: the namespace is split
// into NumPartitions contiguous, equal-width ranges.
func (t *Table) Partition(h uint64) int {
	// Multiply-high maps h uniformly onto [0, NumPartitions) while
	// preserving contiguity of hash ranges.
	hi, _ := bits.Mul64(h, uint64(t.NumPartitions))
	return int(hi)
}

// OwnerOf returns the instance currently serving partition p.
func (t *Table) OwnerOf(p int) Instance {
	return t.Instances[t.Owner[p]]
}

// Lookup returns the owning instance for hash h.
func (t *Table) Lookup(h uint64) Instance {
	return t.OwnerOf(t.Partition(h))
}

// IndexOf returns the ring index of the instance with the given ID,
// or -1 if it is not a member. It never mutates the table, so shared
// (published) tables may be read concurrently.
func (t *Table) IndexOf(id InstanceID) int {
	if t.byID != nil {
		if i, ok := t.byID[id]; ok {
			return i
		}
		return -1
	}
	// Hand-constructed table without an index: linear scan.
	for i, in := range t.Instances {
		if in.ID == id {
			return i
		}
	}
	return -1
}

// ReplicasOf returns up to r replica instances for partition p: the
// next alive instances clockwise from the owner that live on distinct
// physical nodes (paper §III.H: replicas go to nodes in close proximity
// of the original hashed location, ordered by UUID/ring position).
func (t *Table) ReplicasOf(p, r int) []Instance {
	owner := t.Owner[p]
	ownerNode := t.Instances[owner].Node
	var out []Instance
	usedNodes := map[string]bool{ownerNode: true}
	for step := 1; step < len(t.Instances) && len(out) < r; step++ {
		i := (owner + step) % len(t.Instances)
		in := t.Instances[i]
		if t.Status[i] != Alive || usedNodes[in.Node] {
			continue
		}
		usedNodes[in.Node] = true
		out = append(out, in)
	}
	return out
}

// PartitionsOf returns the partitions owned by the instance at ring
// index idx, in ascending order.
func (t *Table) PartitionsOf(idx int) []int {
	var ps []int
	for p, o := range t.Owner {
		if o == idx {
			ps = append(ps, p)
		}
	}
	return ps
}

// Load returns the number of partitions owned per instance.
func (t *Table) Load() []int {
	load := make([]int, len(t.Instances))
	for _, o := range t.Owner {
		load[o]++
	}
	return load
}

// MostLoaded returns the ring index of the alive instance owning the
// most partitions (ties broken by lowest index), or -1 if no instance
// is alive. A joining node relieves this instance (paper §III.C
// "Node Joins").
func (t *Table) MostLoaded() int {
	load := t.Load()
	best, bestLoad := -1, -1
	for i, l := range load {
		if t.Status[i] != Alive {
			continue
		}
		if l > bestLoad {
			best, bestLoad = i, l
		}
	}
	return best
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	nt := &Table{
		Epoch:         t.Epoch,
		NumPartitions: t.NumPartitions,
		Instances:     append([]Instance(nil), t.Instances...),
		Status:        append([]Status(nil), t.Status...),
		Owner:         append([]int(nil), t.Owner...),
	}
	nt.buildIndex()
	return nt
}

// AliveCount reports how many instances are currently alive.
func (t *Table) AliveCount() int {
	n := 0
	for _, s := range t.Status {
		if s == Alive {
			n++
		}
	}
	return n
}

// Validate checks structural invariants: every partition owned by a
// valid instance index, and failed instances owning no partitions once
// failover has completed is NOT required (failover is asynchronous),
// but indices must be in range.
func (t *Table) Validate() error {
	if t.NumPartitions != len(t.Owner) {
		return fmt.Errorf("ring: NumPartitions=%d but len(Owner)=%d", t.NumPartitions, len(t.Owner))
	}
	if len(t.Instances) != len(t.Status) {
		return fmt.Errorf("ring: %d instances but %d statuses", len(t.Instances), len(t.Status))
	}
	for p, o := range t.Owner {
		if o < 0 || o >= len(t.Instances) {
			return fmt.Errorf("ring: partition %d owned by invalid index %d", p, o)
		}
	}
	ids := map[InstanceID]bool{}
	for _, in := range t.Instances {
		if ids[in.ID] {
			return fmt.Errorf("ring: duplicate instance %q", in.ID)
		}
		ids[in.ID] = true
	}
	return nil
}

// SortNetworkAware reorders instances so that ring position correlates
// with network distance (the paper's future-work network-aware
// topology, §VI): instances are sorted by the Z-order (Morton) index of
// their torus coordinates so ring neighbours — which receive replicas —
// are also network neighbours.
func SortNetworkAware(instances []Instance, coord func(Instance) [3]int) {
	sort.SliceStable(instances, func(i, j int) bool {
		return morton3(coord(instances[i])) < morton3(coord(instances[j]))
	})
}

func morton3(c [3]int) uint64 {
	var m uint64
	for b := 0; b < 21; b++ {
		m |= (uint64(c[0])>>b&1)<<(3*b) |
			(uint64(c[1])>>b&1)<<(3*b+1) |
			(uint64(c[2])>>b&1)<<(3*b+2)
	}
	return m
}
