package ring

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRandomMembershipSequences drives long random sequences of
// joins, planned departures, and failures, checking after every step
// that the table stays structurally valid, partitions are always
// owned by alive instances (where possible), and an independent
// follower applying the same deltas converges byte-for-byte.
func TestRandomMembershipSequences(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			tab, err := New(256, mkInstances(4, 1))
			if err != nil {
				t.Fatal(err)
			}
			follower := tab.Clone()
			nextID := 0
			for step := 0; step < 60; step++ {
				var d Delta
				var ok bool
				switch rng.Intn(3) {
				case 0: // join
					in := Instance{
						ID:   InstanceID(fmt.Sprintf("rand-%d-%d", seed, nextID)),
						Addr: fmt.Sprintf("a%d", nextID),
						Node: fmt.Sprintf("rn-%d-%d", seed, nextID),
					}
					nextID++
					var err error
					d, _, err = tab.PlanJoin(in)
					if err != nil {
						continue
					}
					ok = true
				case 1: // planned departure of a random alive instance
					alive := aliveIdxs(tab)
					if len(alive) <= 2 {
						continue
					}
					id := tab.Instances[alive[rng.Intn(len(alive))]].ID
					var err error
					d, _, err = tab.PlanDeparture(id)
					if err != nil {
						continue
					}
					ok = true
				case 2: // failure of a random alive instance
					alive := aliveIdxs(tab)
					if len(alive) <= 2 {
						continue
					}
					id := tab.Instances[alive[rng.Intn(len(alive))]].ID
					var err error
					d, err = tab.PlanFailure(id, 2)
					if err != nil {
						continue
					}
					ok = true
				}
				if !ok {
					continue
				}
				nt, err := tab.Apply(d)
				if err != nil {
					t.Fatalf("step %d: apply: %v", step, err)
				}
				nf, err := follower.Apply(d)
				if err != nil {
					t.Fatalf("step %d: follower apply: %v", step, err)
				}
				tab, follower = nt, nf
				if err := tab.Validate(); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				if string(EncodeTable(tab)) != string(EncodeTable(follower)) {
					t.Fatalf("step %d: follower diverged", step)
				}
				// Every partition owned by an instance that is not
				// Failed (Departing instances have already migrated
				// their partitions away by construction; Failed ones
				// fail over in the same delta).
				for p, o := range tab.Owner {
					if tab.Status[o] == Failed {
						t.Fatalf("step %d: partition %d owned by failed instance", step, p)
					}
					if tab.Status[o] == Departing {
						t.Fatalf("step %d: partition %d owned by departing instance", step, p)
					}
				}
			}
			if tab.Epoch < 10 {
				t.Fatalf("sequence made too few changes (epoch %d); test is vacuous", tab.Epoch)
			}
		})
	}
}

func aliveIdxs(t *Table) []int {
	var out []int
	for i, s := range t.Status {
		if s == Alive {
			out = append(out, i)
		}
	}
	return out
}
