package ring

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// TestRandomMembershipSequences drives long random sequences of
// joins, planned departures, and failures, checking after every step
// that the table stays structurally valid, partitions are always
// owned by alive instances (where possible), and an independent
// follower applying the same deltas converges byte-for-byte.
func TestRandomMembershipSequences(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			tab, err := New(256, mkInstances(4, 1))
			if err != nil {
				t.Fatal(err)
			}
			follower := tab.Clone()
			nextID := 0
			for step := 0; step < 60; step++ {
				d, ok := randomDelta(rng, tab, seed, &nextID)
				if !ok {
					continue
				}
				nt, err := tab.Apply(d)
				if err != nil {
					t.Fatalf("step %d: apply: %v", step, err)
				}
				nf, err := follower.Apply(d)
				if err != nil {
					t.Fatalf("step %d: follower apply: %v", step, err)
				}
				tab, follower = nt, nf
				if err := tab.Validate(); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				if string(EncodeTable(tab)) != string(EncodeTable(follower)) {
					t.Fatalf("step %d: follower diverged", step)
				}
				// Every partition owned by an instance that is not
				// Failed (Departing instances have already migrated
				// their partitions away by construction; Failed ones
				// fail over in the same delta).
				for p, o := range tab.Owner {
					if tab.Status[o] == Failed {
						t.Fatalf("step %d: partition %d owned by failed instance", step, p)
					}
					if tab.Status[o] == Departing {
						t.Fatalf("step %d: partition %d owned by departing instance", step, p)
					}
				}
			}
			if tab.Epoch < 10 {
				t.Fatalf("sequence made too few changes (epoch %d); test is vacuous", tab.Epoch)
			}
		})
	}
}

// randomDelta plans one random membership change (join, planned
// departure, or failure) against tab, reporting ok=false when the
// drawn change is not plannable in the current state.
func randomDelta(rng *rand.Rand, tab *Table, seed int64, nextID *int) (Delta, bool) {
	switch rng.Intn(3) {
	case 0: // join
		in := Instance{
			ID:   InstanceID(fmt.Sprintf("rand-%d-%d", seed, *nextID)),
			Addr: fmt.Sprintf("a%d", *nextID),
			Node: fmt.Sprintf("rn-%d-%d", seed, *nextID),
		}
		*nextID++
		d, _, err := tab.PlanJoin(in)
		if err != nil {
			return Delta{}, false
		}
		return d, true
	case 1: // planned departure of a random alive instance
		alive := aliveIdxs(tab)
		if len(alive) <= 2 {
			return Delta{}, false
		}
		id := tab.Instances[alive[rng.Intn(len(alive))]].ID
		d, _, err := tab.PlanDeparture(id)
		if err != nil {
			return Delta{}, false
		}
		return d, true
	default: // failure of a random alive instance
		alive := aliveIdxs(tab)
		if len(alive) <= 2 {
			return Delta{}, false
		}
		id := tab.Instances[alive[rng.Intn(len(alive))]].ID
		d, err := tab.PlanFailure(id, 2)
		if err != nil {
			return Delta{}, false
		}
		return d, true
	}
}

// TestEpochGapRecoveryProperty drives the gossip catch-up contract: an
// authority applies random deltas, recording each in a small DeltaLog;
// a follower sees only a random subset (missed broadcasts). At random
// points the follower recovers the way a gossiping instance does —
// replay the log's covering run when one exists, otherwise fall back
// to a full-table fetch — and must converge byte-for-byte either way.
// Any delta applied at the wrong epoch must fail with
// ErrEpochMismatch, the deterministic full-table-fallback signal.
func TestEpochGapRecoveryProperty(t *testing.T) {
	const logCap = 8
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			tab, err := New(128, mkInstances(4, 1))
			if err != nil {
				t.Fatal(err)
			}
			log := NewDeltaLog(logCap)
			follower := tab.Clone()
			nextID := 0
			recoveries, fallbacks := 0, 0

			recover := func(step int) {
				frames, ok := log.Since(follower.Epoch, tab.Epoch)
				if !ok {
					// The log must genuinely not cover the range:
					// the follower lags beyond the retention window.
					if follower.Epoch+uint64(logCap) > tab.Epoch {
						t.Fatalf("step %d: log refused a coverable range [%d,%d)",
							step, follower.Epoch, tab.Epoch)
					}
					follower = tab.Clone() // full-table fetch
					fallbacks++
					return
				}
				for _, f := range frames {
					d, err := DecodeDelta(f)
					if err != nil {
						t.Fatalf("step %d: replay decode: %v", step, err)
					}
					nf, err := follower.Apply(d)
					if err != nil {
						t.Fatalf("step %d: replay apply at epoch %d: %v",
							step, follower.Epoch, err)
					}
					follower = nf
				}
				if string(EncodeTable(follower)) != string(EncodeTable(tab)) {
					t.Fatalf("step %d: replay did not converge", step)
				}
				recoveries++
			}

			for step := 0; step < 80; step++ {
				d, ok := randomDelta(rng, tab, seed, &nextID)
				if !ok {
					continue
				}
				nt, err := tab.Apply(d)
				if err != nil {
					t.Fatalf("step %d: apply: %v", step, err)
				}
				log.Record(d.FromEpoch, EncodeDelta(d))
				tab = nt

				// The follower misses the broadcast half the time.
				if rng.Intn(2) == 0 && d.FromEpoch == follower.Epoch {
					if follower, err = follower.Apply(d); err != nil {
						t.Fatalf("step %d: follower apply: %v", step, err)
					}
				} else if d.FromEpoch != follower.Epoch {
					// A missed-delta holder applying out of order must
					// get the deterministic mismatch signal.
					if _, err := follower.Apply(d); !errors.Is(err, ErrEpochMismatch) {
						t.Fatalf("step %d: out-of-order apply: got %v, want ErrEpochMismatch", step, err)
					}
				}
				if rng.Intn(10) == 0 {
					recover(step)
				}
			}
			recover(80)
			if string(EncodeTable(follower)) != string(EncodeTable(tab)) {
				t.Fatal("follower did not converge after final recovery")
			}
			if recoveries == 0 {
				t.Fatal("sequence exercised no replay recovery; test is vacuous")
			}
			_ = fallbacks // any mix of replay/fallback is valid; both paths asserted above
		})
	}
}

func aliveIdxs(t *Table) []int {
	var out []int
	for i, s := range t.Status {
		if s == Alive {
			out = append(out, i)
		}
	}
	return out
}
