package ring

import (
	"math/rand"
	"testing"
)

// TestDecodeNeverPanics: random and mutated inputs must produce
// errors or valid tables, never panics — these bytes arrive off the
// network.
func TestDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab, _ := New(64, mkInstances(4, 1))
	validT := EncodeTable(tab)
	d, _, _ := tab.PlanJoin(Instance{ID: "j", Addr: "a", Node: "n"})
	validD := EncodeDelta(d)
	for i := 0; i < 5000; i++ {
		var b []byte
		switch i % 4 {
		case 0:
			b = make([]byte, rng.Intn(128))
			rng.Read(b)
		case 1:
			b = append([]byte(nil), validT...)
			b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
		case 2:
			b = append([]byte(nil), validD...)
			b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
		case 3: // truncation
			src := validT
			if rng.Intn(2) == 0 {
				src = validD
			}
			b = src[:rng.Intn(len(src))]
		}
		if dt, err := DecodeTable(b); err == nil {
			// Whatever decodes must satisfy the structural
			// invariants.
			if verr := dt.Validate(); verr != nil {
				t.Fatalf("decoded table violates invariants: %v", verr)
			}
		}
		DecodeDelta(b) // must not panic
	}
}
