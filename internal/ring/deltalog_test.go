package ring

import "testing"

func TestDeltaLogSinceAndEviction(t *testing.T) {
	l := NewDeltaLog(4)
	for e := uint64(1); e <= 10; e++ {
		l.Record(e, []byte{byte(e)})
	}
	if l.Len() != 4 {
		t.Fatalf("log retains %d entries, want 4", l.Len())
	}
	if _, ok := l.Since(1, 10); ok {
		t.Fatal("evicted range reported coverable")
	}
	frames, ok := l.Since(7, 11)
	if !ok || len(frames) != 4 {
		t.Fatalf("Since(7,11) = %d frames, ok=%v; want 4, true", len(frames), ok)
	}
	for i, f := range frames {
		if len(f) != 1 || f[0] != byte(7+i) {
			t.Fatalf("frame %d = %v, want [%d]", i, f, 7+i)
		}
	}
	if frames, ok := l.Since(9, 9); !ok || len(frames) != 0 {
		t.Fatal("empty range should be trivially coverable")
	}
}

func TestDeltaLogGapFromTableAdoption(t *testing.T) {
	// A full-table adoption skips epochs without recording deltas; the
	// resulting hole must make Since report the range uncoverable.
	l := NewDeltaLog(16)
	l.Record(1, []byte("a"))
	l.Record(2, []byte("b"))
	// Epochs 3..5 skipped (table adoption), then deltas resume.
	l.Record(6, []byte("c"))
	if _, ok := l.Since(1, 7); ok {
		t.Fatal("gap at epochs 3-5 reported coverable")
	}
	if _, ok := l.Since(6, 7); !ok {
		t.Fatal("post-gap run should be coverable")
	}
}

func TestDeltaLogCopiesFrames(t *testing.T) {
	l := NewDeltaLog(4)
	buf := []byte{1, 2, 3}
	l.Record(1, buf)
	buf[0] = 99
	frames, ok := l.Since(1, 2)
	if !ok || frames[0][0] != 1 {
		t.Fatal("Record must copy the frame, not alias the caller's buffer")
	}
}

func TestDeltaLogNilSafe(t *testing.T) {
	var l *DeltaLog
	l.Record(1, []byte("x"))
	if _, ok := l.Since(1, 2); ok {
		t.Fatal("nil log covered a range")
	}
	if l.Len() != 0 {
		t.Fatal("nil log has entries")
	}
}
