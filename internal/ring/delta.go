package ring

import (
	"errors"
	"fmt"
)

// Delta is an incremental membership update, broadcast by managers so
// every table converges without shipping the full table (paper §III.C:
// "the manager broadcasts out the incremental information of
// membership in an atomic manner").
type Delta struct {
	// FromEpoch is the epoch this delta applies on top of; applying
	// it yields FromEpoch+1.
	FromEpoch uint64
	// AddInstance, when non-zero, appends a new instance to the ring.
	AddInstance *Instance
	// SetStatus marks existing instances (by ID) with a new status.
	SetStatus map[InstanceID]Status
	// Reassign moves partitions to new owners (by instance ID).
	Reassign map[int]InstanceID
}

// ErrEpochMismatch reports a delta that does not apply to the table's
// current epoch; the holder must fetch a full table instead.
var ErrEpochMismatch = errors.New("ring: delta epoch mismatch")

// Apply produces the next-epoch table with the delta applied. The
// receiver is not modified.
func (t *Table) Apply(d Delta) (*Table, error) {
	if d.FromEpoch != t.Epoch {
		return nil, fmt.Errorf("%w: table at %d, delta from %d", ErrEpochMismatch, t.Epoch, d.FromEpoch)
	}
	nt := t.Clone()
	nt.Epoch++
	if d.AddInstance != nil {
		if nt.IndexOf(d.AddInstance.ID) >= 0 {
			return nil, fmt.Errorf("ring: instance %q already a member", d.AddInstance.ID)
		}
		nt.Instances = append(nt.Instances, *d.AddInstance)
		nt.Status = append(nt.Status, Alive)
		nt.buildIndex() // Clone's index predates the append
	}
	for id, s := range d.SetStatus {
		i := nt.IndexOf(id)
		if i < 0 {
			return nil, fmt.Errorf("ring: SetStatus for unknown instance %q", id)
		}
		nt.Status[i] = s
	}
	for p, id := range d.Reassign {
		if p < 0 || p >= nt.NumPartitions {
			return nil, fmt.Errorf("ring: reassign of invalid partition %d", p)
		}
		i := nt.IndexOf(id)
		if i < 0 {
			return nil, fmt.Errorf("ring: reassign to unknown instance %q", id)
		}
		nt.Owner[p] = i
	}
	return nt, nil
}

// PlanJoin computes the delta admitting a new instance: it joins as the
// neighbour of the most-loaded node and takes over (roughly) half of
// that node's partitions (paper §III.C "Node Joins"). The returned
// partition list is what must be migrated before the delta is
// broadcast.
func (t *Table) PlanJoin(newcomer Instance) (Delta, []int, error) {
	if t.IndexOf(newcomer.ID) >= 0 {
		return Delta{}, nil, fmt.Errorf("ring: instance %q already a member", newcomer.ID)
	}
	busy := t.MostLoaded()
	if busy < 0 {
		return Delta{}, nil, errors.New("ring: no alive instance to relieve")
	}
	parts := t.PartitionsOf(busy)
	// Take the upper half of the busy instance's contiguous run.
	take := parts[len(parts)/2:]
	if len(parts) <= 1 {
		// The busy node has a single partition; the newcomer joins
		// with no partitions (the ring is saturated for now).
		take = nil
	}
	d := Delta{
		FromEpoch:   t.Epoch,
		AddInstance: &newcomer,
		Reassign:    make(map[int]InstanceID, len(take)),
	}
	for _, p := range take {
		d.Reassign[p] = newcomer.ID
	}
	return d, take, nil
}

// PlanDeparture computes the delta for a planned departure (§III.C
// "Node departures"): the departing instance's partitions migrate to
// its alive ring neighbours, then the instance is marked Departing.
// The returned map lists, per receiving instance index, the partitions
// it must absorb.
func (t *Table) PlanDeparture(id InstanceID) (Delta, map[int][]int, error) {
	idx := t.IndexOf(id)
	if idx < 0 {
		return Delta{}, nil, fmt.Errorf("ring: unknown instance %q", id)
	}
	if t.AliveCount() <= 1 {
		return Delta{}, nil, errors.New("ring: cannot depart the last alive instance")
	}
	parts := t.PartitionsOf(idx)
	d := Delta{
		FromEpoch: t.Epoch,
		SetStatus: map[InstanceID]Status{id: Departing},
		Reassign:  make(map[int]InstanceID, len(parts)),
	}
	moves := make(map[int][]int)
	// Spread the partitions over alive neighbours round-robin,
	// starting with the clockwise successor.
	var targets []int
	for step := 1; step < len(t.Instances); step++ {
		i := (idx + step) % len(t.Instances)
		if t.Status[i] == Alive && i != idx {
			targets = append(targets, i)
		}
	}
	if len(targets) == 0 {
		return Delta{}, nil, errors.New("ring: no alive neighbour to absorb partitions")
	}
	for n, p := range parts {
		tgt := targets[n%len(targets)]
		d.Reassign[p] = t.Instances[tgt].ID
		moves[tgt] = append(moves[tgt], p)
	}
	return d, moves, nil
}

// PlanFailure computes the delta for an unplanned failure (§III.C
// "Node departures", failure path): the failed node is marked Failed
// and each of its partitions fails over to the partition's first
// replica. Re-replication is initiated by the manager separately.
func (t *Table) PlanFailure(id InstanceID, replicas int) (Delta, error) {
	idx := t.IndexOf(id)
	if idx < 0 {
		return Delta{}, fmt.Errorf("ring: unknown instance %q", id)
	}
	d := Delta{
		FromEpoch: t.Epoch,
		SetStatus: map[InstanceID]Status{id: Failed},
		Reassign:  make(map[int]InstanceID),
	}
	// Failing over needs the replica set computed while the node is
	// still in the ring but excluded from candidacy: mark a scratch
	// copy failed first.
	scratch := t.Clone()
	scratch.Status[idx] = Failed
	for _, p := range t.PartitionsOf(idx) {
		reps := scratch.ReplicasOf(p, replicas)
		if len(reps) == 0 {
			return Delta{}, fmt.Errorf("ring: partition %d has no alive replica to fail over to", p)
		}
		d.Reassign[p] = reps[0].ID
	}
	return d, nil
}
