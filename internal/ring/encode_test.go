package ring

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTableRoundTrip(t *testing.T) {
	tab, _ := New(128, mkInstances(4, 2))
	tab.Status[3] = Failed
	tab.Status[5] = Departing
	tab.Owner[7] = 2
	got, err := DecodeTable(EncodeTable(tab))
	if err != nil {
		t.Fatal(err)
	}
	tab.byID = nil
	got.byID = nil
	if !reflect.DeepEqual(tab, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, tab)
	}
}

func TestTableRoundTripSingle(t *testing.T) {
	tab, _ := New(1, mkInstances(1, 1))
	got, err := DecodeTable(EncodeTable(tab))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPartitions != 1 || len(got.Instances) != 1 {
		t.Errorf("bad single-instance round trip: %+v", got)
	}
}

func TestDecodeTableRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("ZZZZ"),
		[]byte("ZHTT"),
		[]byte("ZHTT\x01"),
		append(EncodeTable(mustTable(t)), 0xff), // trailing junk
	}
	for i, b := range cases {
		if _, err := DecodeTable(b); err == nil {
			t.Errorf("case %d: want decode error", i)
		}
	}
}

func TestDecodeTableTruncation(t *testing.T) {
	full := EncodeTable(mustTable(t))
	for cut := 1; cut < len(full); cut++ {
		if _, err := DecodeTable(full[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
}

func mustTable(t *testing.T) *Table {
	t.Helper()
	tab, err := New(32, mkInstances(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestDeltaRoundTrip(t *testing.T) {
	d := Delta{
		FromEpoch:   7,
		AddInstance: &Instance{ID: "new-1", Addr: "n9:1", Node: "n9"},
		SetStatus:   map[InstanceID]Status{"uuid-0-0": Failed, "uuid-1-0": Departing},
		Reassign:    map[int]InstanceID{3: "new-1", 9: "uuid-2-0"},
	}
	got, err := DecodeDelta(EncodeDelta(d))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, got) {
		t.Errorf("delta round trip mismatch:\n got %+v\nwant %+v", got, d)
	}
}

func TestDeltaRoundTripEmpty(t *testing.T) {
	d := Delta{FromEpoch: 1}
	got, err := DecodeDelta(EncodeDelta(d))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, got) {
		t.Errorf("empty delta mismatch: %+v", got)
	}
}

func TestDeltaRoundTripProperty(t *testing.T) {
	err := quick.Check(func(epoch uint64, parts []uint16, fail bool) bool {
		d := Delta{FromEpoch: epoch}
		if len(parts) > 0 {
			d.Reassign = map[int]InstanceID{}
			for _, p := range parts {
				d.Reassign[int(p)] = InstanceID("target")
			}
		}
		if fail {
			d.SetStatus = map[InstanceID]Status{"x": Failed}
		}
		got, err := DecodeDelta(EncodeDelta(d))
		return err == nil && reflect.DeepEqual(d, got)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestDecodeDeltaRejectsGarbage(t *testing.T) {
	for i, b := range [][]byte{nil, []byte("ZHTD"), []byte("XXXX\x01")} {
		if _, err := DecodeDelta(b); err == nil {
			t.Errorf("case %d: want decode error", i)
		}
	}
}

// TestDeltaBroadcastFlow exercises the manager protocol end to end:
// plan on one table, encode, decode elsewhere, apply.
func TestDeltaBroadcastFlow(t *testing.T) {
	origin, _ := New(64, mkInstances(4, 1))
	follower := origin.Clone()

	d, _, err := origin.PlanJoin(Instance{ID: "new", Addr: "a", Node: "nn"})
	if err != nil {
		t.Fatal(err)
	}
	wire := EncodeDelta(d)
	rd, err := DecodeDelta(wire)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := origin.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := follower.Apply(rd)
	if err != nil {
		t.Fatal(err)
	}
	if string(EncodeTable(o2)) != string(EncodeTable(f2)) {
		t.Error("follower diverged from origin after applying broadcast delta")
	}
}

// TestMembershipFootprint checks the paper's memory-footprint claim
// (§III.A): the membership table costs ~32 bytes per node, so a
// million-node table fits in ~32 MB. Our encoding should be in the
// same ballpark per entry.
func TestMembershipFootprint(t *testing.T) {
	// One partition per instance isolates the per-instance cost from
	// the partition-owner map.
	tab, _ := New(1024, mkInstances(1024, 1))
	enc := EncodeTable(tab)
	// Owner map: 1024 uvarints of values < 1024 → ≤ 2 bytes each.
	ownerBytes := 2 * tab.NumPartitions
	perEntry := float64(len(enc)-ownerBytes) / float64(len(tab.Instances))
	// Our entries carry variable-length ID/addr/node strings instead
	// of the paper's packed 32-byte records; anything within 2x of
	// that budget keeps a million-node table under ~70 MB.
	if perEntry > 64 {
		t.Errorf("membership entry costs %.0f bytes encoded; paper budgets ~32", perEntry)
	}
	t.Logf("table: %d instances, %d bytes encoded, ≈%.0f B/instance",
		len(tab.Instances), len(enc), perEntry)
}

func BenchmarkEncodeTable1K(b *testing.B) {
	tab, _ := New(1<<16, mkInstances(1024, 1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = EncodeTable(tab)
	}
}

func BenchmarkDecodeTable1K(b *testing.B) {
	tab, _ := New(1<<16, mkInstances(1024, 1))
	enc := EncodeTable(tab)
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeTable(enc); err != nil {
			b.Fatal(err)
		}
	}
}
