package figures

import (
	"errors"
	"os"

	"zht/internal/baselines/bdb"
	"zht/internal/baselines/kyoto"
	"zht/internal/storage"
)

// Small adapters giving the Figure 6 stores one interface.

func mkTempDir() (string, error) { return os.MkdirTemp("", "zht-fig") }
func rmTempDir(dir string)       { os.RemoveAll(dir) }

type novohtKV struct{ s storage.KV }

func (k novohtKV) set(key string, v []byte) error { return k.s.Put(key, v) }
func (k novohtKV) get(key string) error {
	_, ok, err := k.s.Get(key)
	if err != nil {
		return err
	}
	if !ok {
		return errors.New("missing key")
	}
	return nil
}
func (k novohtKV) del(key string) error {
	_, err := k.s.Remove(key)
	return err
}
func (k novohtKV) close() error { return k.s.Close() }

type kyotoKV struct{ db *kyoto.DB }

func openKyotoKV(path string) (kyotoKV, error) {
	db, err := kyoto.Open(path, 1<<18)
	return kyotoKV{db}, err
}
func (k kyotoKV) set(key string, v []byte) error { return k.db.Set(key, v) }
func (k kyotoKV) get(key string) error {
	_, ok, err := k.db.Get(key)
	if err != nil {
		return err
	}
	if !ok {
		return errors.New("missing key")
	}
	return nil
}
func (k kyotoKV) del(key string) error { return k.db.Delete(key) }
func (k kyotoKV) close() error         { return k.db.Close() }

type bdbKV struct{ db *bdb.DB }

func openBdbKV(path string) (bdbKV, error) {
	db, err := bdb.Open(path, 64)
	return bdbKV{db}, err
}
func (k bdbKV) set(key string, v []byte) error { return k.db.Set([]byte(key), v) }
func (k bdbKV) get(key string) error {
	_, ok, err := k.db.Get([]byte(key))
	if err != nil {
		return err
	}
	if !ok {
		return errors.New("missing key")
	}
	return nil
}
func (k bdbKV) del(key string) error {
	_, err := k.db.Delete([]byte(key))
	return err
}
func (k bdbKV) close() error { return k.db.Close() }

type mapKV struct{ m map[string][]byte }

func (k mapKV) set(key string, v []byte) error {
	k.m[key] = append([]byte(nil), v...)
	return nil
}
func (k mapKV) get(key string) error {
	if _, ok := k.m[key]; !ok {
		return errors.New("missing key")
	}
	return nil
}
func (k mapKV) del(key string) error {
	delete(k.m, key)
	return nil
}
func (k mapKV) close() error { return nil }
