package figures

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"zht/internal/core"
	"zht/internal/fusionfs"
	"zht/internal/fusionfs/gpfssim"
	"zht/internal/istore"
	"zht/internal/matrix"
	"zht/internal/matrix/falkon"
	"zht/internal/transport"
)

// Fig16FusionFS — FusionFS (real, on ZHT) vs GPFS (model) time per
// file create across N directories.
func Fig16FusionFS(o Options) (*Series, error) {
	s := &Series{
		ID:      "fig16",
		Title:   "FusionFS vs GPFS: time per file create (FusionFS real, GPFS model)",
		Columns: []string{"nodes", "fusionfs (ms)", "gpfs (ms)", "gpfs/fusionfs"},
		PaperNotes: []string{
			"FusionFS 4.5 ms (1 node) → 8 ms (512 nodes, ~2x); GPFS 5 ms → 393 ms (78x); ~2 orders of magnitude gap at 512",
		},
	}
	scales := []int{1, 2, 4, 8, 16}
	if o.Quick {
		scales = []int{1, 2, 4}
	} else {
		scales = append(scales, 32, 64)
	}
	creates := o.scale(200, 40)
	gpfs := gpfssim.Default()
	for _, n := range scales {
		cfg := core.Config{NumPartitions: 1024, Replicas: 0, RetryBase: time.Millisecond, Metrics: o.Metrics}
		d, _, err := core.BootstrapInproc(cfg, n)
		if err != nil {
			return nil, err
		}
		rootClient, err := d.NewClient()
		if err != nil {
			d.Close()
			return nil, err
		}
		fs, err := fusionfs.New(rootClient)
		if err != nil {
			d.Close()
			return nil, err
		}
		// One directory per node, as the paper's benchmark does:
		// "creates 10K files per node, across N directories, where N
		// was equal to the number of nodes".
		for i := 0; i < n; i++ {
			if err := fs.Mkdir(fmt.Sprintf("/dir%03d", i)); err != nil {
				d.Close()
				return nil, err
			}
		}
		var wg sync.WaitGroup
		errs := make(chan error, n)
		start := time.Now()
		for node := 0; node < n; node++ {
			wg.Add(1)
			go func(node int) {
				defer wg.Done()
				c, err := d.NewClient()
				if err != nil {
					errs <- err
					return
				}
				nodeFS, err := fusionfs.New(c)
				if err != nil {
					errs <- err
					return
				}
				for i := 0; i < creates; i++ {
					if err := nodeFS.Create(fmt.Sprintf("/dir%03d/f-%d-%06d", node, node, i)); err != nil {
						errs <- err
						return
					}
				}
			}(node)
		}
		wg.Wait()
		elapsed := time.Since(start)
		d.Close()
		close(errs)
		for err := range errs {
			return nil, err
		}
		perOp := elapsed / time.Duration(n*creates)
		g := gpfs.TimePerOp(n, false)
		s.Rows = append(s.Rows, []string{
			fmt.Sprint(n), ms(perOp), ms(g),
			fmt.Sprintf("%.0fx", float64(g)/float64(perOp)),
		})
	}
	return s, nil
}

// Fig17IStore — IStore metadata/chunk throughput for different file
// sizes at 8/16/32 nodes. File sizes are scaled down 100x from the
// paper (10KB–1GB → 1KB–10MB) so the full sweep fits in memory; the
// shape — smaller files are more metadata-intensive and thus push
// more chunks/sec — is preserved.
func Fig17IStore(o Options) (*Series, error) {
	s := &Series{
		ID:      "fig17",
		Title:   "IStore chunk throughput vs scale and file size (real)",
		Columns: []string{"nodes", "file size", "files", "chunks/s (write+read)"},
		PaperNotes: []string{
			"up to ~500 chunks/s at 32 nodes; smaller files → more metadata-intensive → higher chunks/s",
		},
	}
	nodeScales := []int{8, 16, 32}
	if o.Quick {
		nodeScales = []int{8}
	}
	sizes := []int{1 << 10, 32 << 10, 1 << 20}
	if !o.Quick {
		sizes = append(sizes, 10<<20)
	}
	files := o.scale(24, 6)
	for _, n := range nodeScales {
		cfg := core.Config{NumPartitions: 1024, Replicas: 0, RetryBase: time.Millisecond, Metrics: o.Metrics}
		d, reg, err := core.BootstrapInproc(cfg, 4)
		if err != nil {
			return nil, err
		}
		meta, err := d.NewClient()
		if err != nil {
			d.Close()
			return nil, err
		}
		var addrs []string
		for i := 0; i < n; i++ {
			cs := istore.NewChunkServer()
			addr := fmt.Sprintf("chunk-%03d", i)
			if _, err := reg.Listen(addr, cs.Handle); err != nil {
				d.Close()
				return nil, err
			}
			addrs = append(addrs, addr)
		}
		// k = n/2 data shards: files chunk into n blocks over n
		// nodes, half needed to recover (a typical IDA setting).
		st, err := istore.New(meta, n/2, addrs, reg.NewClient())
		if err != nil {
			d.Close()
			return nil, err
		}
		for _, size := range sizes {
			data := bytes.Repeat([]byte{0xA5}, size)
			start := time.Now()
			for f := 0; f < files; f++ {
				name := fmt.Sprintf("f-%d-%d-%d", n, size, f)
				if err := st.Put(name, data); err != nil {
					d.Close()
					return nil, err
				}
				if _, err := st.Get(name); err != nil {
					d.Close()
					return nil, err
				}
			}
			elapsed := time.Since(start)
			chunks := float64(files*n) * 2 // written + read (k read, count n for symmetry with the paper's accounting)
			s.Rows = append(s.Rows, []string{
				fmt.Sprint(n), sizeLabel(size), fmt.Sprint(files),
				fmt.Sprintf("%.0f", chunks/elapsed.Seconds()),
			})
		}
		d.Close()
	}
	return s, nil
}

func sizeLabel(b int) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dKB", b>>10)
	}
	return fmt.Sprintf("%dB", b)
}

// matrixWorkers picks Figure 18 executor counts.
func matrixWorkers(o Options) []int {
	if o.Quick {
		return []int{4, 8}
	}
	return []int{4, 8, 16, 32, 64}
}

// Fig18Matrix — MATRIX vs Falkon task throughput (NO-OP tasks).
func Fig18Matrix(o Options) (*Series, error) {
	s := &Series{
		ID:      "fig18",
		Title:   "Task throughput: MATRIX (work stealing) vs Falkon (centralized), NO-OP tasks (real)",
		Columns: []string{"workers", "matrix (tasks/s)", "falkon (tasks/s)"},
		PaperNotes: []string{
			"Falkon saturates ≈1700 tasks/s at 256 cores; MATRIX grows 1100 → 4900 tasks/s at 2K cores with no saturation",
		},
	}
	tasks := o.scale(3000, 400)
	for _, w := range matrixWorkers(o) {
		// MATRIX: w single-worker nodes.
		regM := transport.NewRegistry()
		mc, err := matrix.NewCluster(w, matrix.NodeOptions{Workers: 1}, nil,
			func(addr string, h transport.Handler) (transport.Listener, error) { return regM.Listen(addr, h) },
			regM.NewClient())
		if err != nil {
			return nil, err
		}
		mStart := time.Now()
		if err := mc.Submit(matrix.MakeSleepTasks(tasks, 0), "balanced"); err != nil {
			return nil, err
		}
		if !mc.WaitForCount(int64(tasks), 120*time.Second) {
			mc.Stop()
			return nil, fmt.Errorf("matrix workload stalled at %d workers", w)
		}
		mThr := float64(tasks) / time.Since(mStart).Seconds()
		mc.Stop()

		// Falkon: same worker count against one dispatcher.
		regF := transport.NewRegistry()
		fTasks := o.scale(1200, 200)
		fc, err := falkon.NewCluster(w, falkon.DefaultServiceTime,
			func(addr string, h transport.Handler) (transport.Listener, error) { return regF.Listen(addr, h) },
			regF.NewClient())
		if err != nil {
			return nil, err
		}
		fStart := time.Now()
		fc.Dispatcher.Submit(matrix.MakeSleepTasks(fTasks, 0))
		deadline := time.Now().Add(120 * time.Second)
		for time.Now().Before(deadline) && fc.TotalExecuted() < int64(fTasks) {
			time.Sleep(time.Millisecond)
		}
		if fc.TotalExecuted() < int64(fTasks) {
			fc.Stop()
			return nil, fmt.Errorf("falkon workload stalled at %d workers", w)
		}
		fThr := float64(fTasks) / time.Since(fStart).Seconds()
		fc.Stop()

		s.Rows = append(s.Rows, []string{
			fmt.Sprint(w),
			fmt.Sprintf("%.0f", mThr),
			fmt.Sprintf("%.0f", fThr),
		})
	}
	return s, nil
}

// Fig19MatrixEfficiency — efficiency for 1/2/4/8-second tasks (scaled
// 100x down to 10-80 ms so the sweep runs in seconds).
func Fig19MatrixEfficiency(o Options) (*Series, error) {
	s := &Series{
		ID:      "fig19",
		Title:   "Efficiency vs task duration: MATRIX vs Falkon (durations scaled /100, real)",
		Columns: []string{"task (paper s / run ms)", "matrix eff", "falkon eff"},
		PaperNotes: []string{
			"MATRIX 92–97% across 1–8 s tasks; Falkon 18–82% (worst for short tasks)",
		},
	}
	workers := o.scale(16, 8)
	perWorker := o.scale(8, 4)
	for _, paperSec := range []int{1, 2, 4, 8} {
		dur := time.Duration(paperSec) * 10 * time.Millisecond
		tasks := matrix.MakeSleepTasks(workers*perWorker, dur)

		regM := transport.NewRegistry()
		mcNodes := workers / 2
		if mcNodes < 1 {
			mcNodes = 1
		}
		mc, err := matrix.NewCluster(mcNodes, matrix.NodeOptions{Workers: 2}, nil,
			func(addr string, h transport.Handler) (transport.Listener, error) { return regM.Listen(addr, h) },
			regM.NewClient())
		if err != nil {
			return nil, err
		}
		_, mEff, err := mc.RunWorkload(tasks, "balanced", 300*time.Second)
		mc.Stop()
		if err != nil {
			return nil, err
		}

		regF := transport.NewRegistry()
		fc, err := falkon.NewCluster(workers, falkon.DefaultServiceTime,
			func(addr string, h transport.Handler) (transport.Listener, error) { return regF.Listen(addr, h) },
			regF.NewClient())
		if err != nil {
			return nil, err
		}
		_, fEff, err := fc.RunWorkload(matrix.MakeSleepTasks(workers*perWorker, dur), 300*time.Second)
		fc.Stop()
		if err != nil {
			return nil, err
		}
		s.Rows = append(s.Rows, []string{
			fmt.Sprintf("%d s / %d ms", paperSec, paperSec*10),
			fmt.Sprintf("%.0f%%", mEff*100),
			fmt.Sprintf("%.0f%%", fEff*100),
		})
	}
	return s, nil
}
