package figures

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"zht/internal/core"
)

// The paper's micro-benchmark workload (§IV.A): 15-byte keys,
// 132-byte values; clients send insert, then lookup, then remove;
// communication is all-to-all with as many clients as servers.

const (
	keyLen = 15
	valLen = 132
)

func benchKey(client, i int) string {
	return fmt.Sprintf("c%04dk%09d", client, i)[:keyLen]
}

var benchValue = bytes.Repeat([]byte{'v'}, valLen)

// opStats aggregates a measured workload.
type opStats struct {
	Ops      int
	Elapsed  time.Duration
	ErrCount int
}

// Latency is mean time per op.
func (s opStats) Latency() time.Duration {
	if s.Ops == 0 {
		return 0
	}
	return s.Elapsed / time.Duration(s.Ops)
}

// Throughput is aggregate ops/second.
func (s opStats) Throughput() float64 {
	if s.Elapsed == 0 {
		return 0
	}
	return float64(s.Ops) / s.Elapsed.Seconds()
}

// runAllToAll drives the paper's workload: nClients concurrent
// clients, each performing opsPer insert+lookup+remove rounds.
func runAllToAll(d *core.Deployment, nClients, opsPer int) (opStats, error) {
	clients := make([]*core.Client, nClients)
	for i := range clients {
		c, err := d.NewClient()
		if err != nil {
			return opStats{}, err
		}
		clients[i] = c
	}
	var wg sync.WaitGroup
	errs := make(chan error, nClients)
	start := time.Now()
	for ci, c := range clients {
		wg.Add(1)
		go func(ci int, c *core.Client) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				k := benchKey(ci, i)
				if err := c.Insert(k, benchValue); err != nil {
					errs <- err
					return
				}
				if _, err := c.Lookup(k); err != nil {
					errs <- err
					return
				}
				if err := c.Remove(k); err != nil {
					errs <- err
					return
				}
			}
		}(ci, c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return opStats{}, err
	}
	return opStats{Ops: nClients * opsPer * 3, Elapsed: elapsed}, nil
}
