// Package figures regenerates every table and figure in the paper's
// evaluation (see DESIGN.md §3 for the per-experiment index). Each
// FigNN function runs the corresponding workload — on real in-process
// or loopback-network deployments at laptop scales, and on the
// simulator at Blue Gene/P scales — and returns a Series with the
// measured rows next to the paper-reported values.
//
// cmd/zht-figures prints these; the root bench_test.go wraps each in
// a testing.B benchmark.
package figures

import (
	"fmt"
	"strings"
	"time"

	"zht/internal/metrics"
)

// Series is one regenerated table or figure.
type Series struct {
	ID      string // e.g. "fig07"
	Title   string
	Columns []string
	Rows    [][]string
	// PaperNotes state what the paper reported, for eyeball
	// comparison of the shape.
	PaperNotes []string
}

// CSV renders the series as RFC-4180 CSV (paper notes become trailing
// comment lines prefixed with '#').
func (s *Series) CSV() string {
	var b strings.Builder
	esc := func(cell string) string {
		if strings.ContainsAny(cell, ",\"\n") {
			return "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
		}
		return cell
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	writeRow(s.Columns)
	for _, row := range s.Rows {
		writeRow(row)
	}
	for _, n := range s.PaperNotes {
		fmt.Fprintf(&b, "# paper: %s\n", n)
	}
	return b.String()
}

// Render formats the series as an aligned text table.
func (s *Series) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", s.ID, s.Title)
	widths := make([]int, len(s.Columns))
	for i, c := range s.Columns {
		widths[i] = len(c)
	}
	for _, row := range s.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(s.Columns)
	for _, row := range s.Rows {
		writeRow(row)
	}
	for _, n := range s.PaperNotes {
		fmt.Fprintf(&b, "paper: %s\n", n)
	}
	return b.String()
}

// Options tunes workload sizes: Quick mode shrinks everything so the
// full suite finishes in seconds (tests); the default sizes are meant
// for the published numbers in EXPERIMENTS.md.
type Options struct {
	Quick bool
	// Metrics, when non-nil, is threaded into every deployment and
	// simulator run the generators build, so one registry accumulates
	// the whole suite's instruments (real and simulated ops share the
	// same names — see OBSERVABILITY.md).
	Metrics *metrics.Registry
}

func (o Options) scale(def, quick int) int {
	if o.Quick {
		return quick
	}
	return def
}

// ms formats a duration in milliseconds.
func ms(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/1e6) }

// us formats a duration in microseconds.
func us(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d.Nanoseconds())/1e3) }

// All runs every figure/table generator and returns the series in
// paper order.
func All(o Options) ([]*Series, error) {
	gens := []func(Options) (*Series, error){
		Fig01GPFS,
		Tab01Features,
		Fig04Partitions,
		Fig05Bootstrap,
		Fig06NoVoHT,
		Fig07Latency,
		Fig08ClusterLatency,
		Fig09Throughput,
		Fig10ClusterThroughput,
		Fig11Efficiency,
		Fig12Replication,
		Fig13InstancesLatency,
		Fig14InstancesThroughput,
		Fig15Migration,
		Fig16FusionFS,
		Fig17IStore,
		Fig18Matrix,
		Fig19MatrixEfficiency,
	}
	var out []*Series
	for _, g := range gens {
		s, err := g(o)
		if err != nil {
			return out, err
		}
		out = append(out, s)
	}
	return out, nil
}

// ByID returns the generator for one figure id (e.g. "fig07",
// "tab01"), or nil.
func ByID(id string) func(Options) (*Series, error) {
	switch strings.ToLower(id) {
	case "fig01":
		return Fig01GPFS
	case "tab01":
		return Tab01Features
	case "fig04":
		return Fig04Partitions
	case "fig05":
		return Fig05Bootstrap
	case "fig06":
		return Fig06NoVoHT
	case "fig07":
		return Fig07Latency
	case "fig08":
		return Fig08ClusterLatency
	case "fig09":
		return Fig09Throughput
	case "fig10":
		return Fig10ClusterThroughput
	case "fig11":
		return Fig11Efficiency
	case "fig12":
		return Fig12Replication
	case "fig13":
		return Fig13InstancesLatency
	case "fig14":
		return Fig14InstancesThroughput
	case "fig15":
		return Fig15Migration
	case "fig16":
		return Fig16FusionFS
	case "fig17":
		return Fig17IStore
	case "fig18":
		return Fig18Matrix
	case "fig19":
		return Fig19MatrixEfficiency
	}
	return nil
}
