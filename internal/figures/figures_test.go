package figures

import (
	"strconv"
	"strings"
	"testing"
)

// The figures suite runs in Quick mode here; these tests assert the
// structural claims each figure makes (who wins, what grows), not
// absolute numbers.

func quick() Options { return Options{Quick: true} }

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(s, "%"), "x"), " ms")
	v, err := strconv.ParseFloat(strings.TrimPrefix(s, "+"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestFig01Shape(t *testing.T) {
	s, err := Fig01GPFS(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) < 5 {
		t.Fatal("too few rows")
	}
	for _, row := range s.Rows {
		if parseF(t, row[2]) <= parseF(t, row[1]) {
			t.Errorf("cores=%s: one-dir (%s) not worse than many-dir (%s)", row[0], row[2], row[1])
		}
	}
	last := s.Rows[len(s.Rows)-1]
	if parseF(t, last[2]) < 10000 {
		t.Errorf("one-dir at 16K cores = %s ms; paper reports ~63,000 ms", last[2])
	}
}

func TestTab01Probes(t *testing.T) {
	s, err := Tab01Features(quick())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]string{}
	for _, row := range s.Rows {
		byName[row[0]] = row
	}
	if byName["ZHT (this repo)"][5] != "yes" {
		t.Error("ZHT append probe failed")
	}
	if !strings.HasPrefix(byName["Memcached (memcache)"][5], "no") {
		t.Error("memcache append probe returned yes")
	}
	if !strings.HasPrefix(byName["Cassandra (cassring)"][5], "no") {
		t.Error("cassring append probe returned yes")
	}
	if byName["ZHT (this repo)"][4] != "yes" {
		t.Error("ZHT dynamic membership probe failed")
	}
	if byName["Cassandra (cassring)"][4] != "yes" {
		t.Error("cassring dynamic membership probe failed")
	}
	if !strings.HasPrefix(byName["C-MPI (cmpi/Kademlia)"][5], "no") {
		t.Error("cmpi append probe returned yes")
	}
}

func TestFig04Flat(t *testing.T) {
	s, err := Fig04Partitions(quick())
	if err != nil {
		t.Fatal(err)
	}
	first := parseF(t, s.Rows[0][1])
	last := parseF(t, s.Rows[len(s.Rows)-1][1])
	// The paper's point: partition count barely affects latency
	// (0.73 → 0.77 ms). Allow generous slack for in-proc noise.
	if last > first*3 && last-first > 0.05 {
		t.Errorf("latency grew %0.3f → %0.3f ms across partition sweep; paper shows flat", first, last)
	}
}

func TestFig05Components(t *testing.T) {
	s, err := Fig05Bootstrap(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range s.Rows {
		if parseF(t, row[1]) < parseF(t, row[4]) {
			t.Errorf("nodes=%s: partition boot below zht total; model inverted", row[0])
		}
	}
	// Real in-proc bootstrap measured at small scale.
	if s.Rows[0][5] == "-" {
		t.Error("no real bootstrap measurement at 64 nodes")
	}
}

func TestFig06Ordering(t *testing.T) {
	s, err := Fig06NoVoHT(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Assert ordering at the largest key count, where the disk
	// stores have outgrown their caches (the paper's regime).
	row := s.Rows[len(s.Rows)-1]
	novo := parseF(t, row[1])
	kyoto := parseF(t, row[3])
	bdbLat := parseF(t, row[4])
	if kyoto < novo {
		t.Errorf("pairs=%s: kyoto (%.2fµs) beat novoht (%.2fµs); disk store should be slower", row[0], kyoto, novo)
	}
	if bdbLat < novo {
		t.Errorf("pairs=%s: bdb (%.2fµs) beat novoht (%.2fµs)", row[0], bdbLat, novo)
	}
}

func TestFig07TransportOrdering(t *testing.T) {
	s, err := Fig07Latency(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range s.Rows {
		noCache := parseF(t, row[2])
		cache := parseF(t, row[3])
		if noCache <= cache*0.9 {
			t.Errorf("nodes=%s (%s): no-cache (%.3f) not slower than cached (%.3f)", row[0], row[1], noCache, cache)
		}
	}
	// Simulated tail reaches ≈1.1 ms at 8K.
	last := s.Rows[len(s.Rows)-1]
	if v := parseF(t, last[3]); v < 0.8 || v > 1.6 {
		t.Errorf("sim 8K latency = %.3f ms, want ≈1.1", v)
	}
}

func TestFig08ZHTBeatsCassandra(t *testing.T) {
	s, err := Fig08ClusterLatency(quick())
	if err != nil {
		t.Fatal(err)
	}
	// At the largest measured scale Cassandra must be clearly slower.
	last := s.Rows[len(s.Rows)-1]
	if parseF(t, last[2]) < parseF(t, last[1])*1.2 {
		t.Errorf("nodes=%s: cassandra (%s ms) not clearly slower than zht (%s ms)", last[0], last[2], last[1])
	}
}

func TestFig10ThroughputGap(t *testing.T) {
	s, err := Fig10ClusterThroughput(quick())
	if err != nil {
		t.Fatal(err)
	}
	last := s.Rows[len(s.Rows)-1]
	if gap := parseF(t, last[4]); gap < 1.3 {
		t.Errorf("zht/cassandra throughput gap = %.1fx at %s nodes; paper shows ~7x at 64", gap, last[0])
	}
}

func TestFig11Declines(t *testing.T) {
	s, err := Fig11Efficiency(quick())
	if err != nil {
		t.Fatal(err)
	}
	prev := 101.0
	for _, row := range s.Rows {
		e := parseF(t, row[2])
		if e > prev {
			t.Errorf("efficiency increased at %s nodes", row[0])
		}
		prev = e
	}
	if first := parseF(t, s.Rows[0][2]); first < 99 {
		t.Errorf("2-node efficiency = %v%%, want 100%%", first)
	}
	if last := parseF(t, s.Rows[len(s.Rows)-1][2]); last > 25 {
		t.Errorf("1M-node efficiency = %v%%, want near paper's 8%%", last)
	}
}

func TestFig12SyncWorseThanAsync(t *testing.T) {
	s, err := Fig12Replication(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range s.Rows {
		async := strings.Split(row[6], "/")
		syncv := strings.Split(row[7], "/")
		if parseF(t, syncv[0]) <= parseF(t, async[0]) {
			t.Errorf("nodes=%s: sim sync r1 (%s) not above async (%s)", row[0], syncv[0], async[0])
		}
	}
}

func TestFig13And14Tradeoff(t *testing.T) {
	s13, err := Fig13InstancesLatency(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range s13.Rows {
		if parseF(t, row[4]) <= parseF(t, row[1]) {
			t.Errorf("nodes=%s: 8/node latency not above 1/node", row[0])
		}
	}
	s14, err := Fig14InstancesThroughput(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range s14.Rows {
		if parseF(t, row[3]) <= parseF(t, row[1]) {
			t.Errorf("nodes=%s: 4/node throughput not above 1/node", row[0])
		}
	}
}

func TestFig15JoinsComplete(t *testing.T) {
	s, err := Fig15Migration(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) < 2 {
		t.Fatalf("only %d doubling rows", len(s.Rows))
	}
	for _, row := range s.Rows {
		if row[2] != "yes" {
			t.Errorf("transition %s: client ops failed during join", row[0])
		}
	}
}

func TestFig16FusionFSWins(t *testing.T) {
	s, err := Fig16FusionFS(quick())
	if err != nil {
		t.Fatal(err)
	}
	last := s.Rows[len(s.Rows)-1]
	if parseF(t, last[3]) < 2 {
		t.Errorf("GPFS/FusionFS ratio at %s nodes = %s; FusionFS should win clearly", last[0], last[3])
	}
}

func TestFig17Runs(t *testing.T) {
	s, err := Fig17IStore(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) < 3 {
		t.Fatalf("too few rows: %d", len(s.Rows))
	}
	// Smaller files must be more metadata-intensive: higher
	// chunks/sec than the largest size at the same node count.
	first := parseF(t, s.Rows[0][3])
	lastSameNodes := parseF(t, s.Rows[2][3])
	if first < lastSameNodes {
		t.Errorf("small-file chunk rate (%.0f) below large-file rate (%.0f)", first, lastSameNodes)
	}
}

func TestFig18MatrixScalesFalkonSaturates(t *testing.T) {
	s, err := Fig18Matrix(quick())
	if err != nil {
		t.Fatal(err)
	}
	first, last := s.Rows[0], s.Rows[len(s.Rows)-1]
	mGrowth := parseF(t, last[1]) / parseF(t, first[1])
	fGrowth := parseF(t, last[2]) / parseF(t, first[2])
	if fGrowth > 1.6 {
		t.Errorf("falkon grew %.1fx with workers; centralized baseline should saturate", fGrowth)
	}
	if parseF(t, last[1]) < parseF(t, last[2]) {
		t.Errorf("matrix (%s) below falkon (%s) at %s workers", last[1], last[2], last[0])
	}
	_ = mGrowth
}

func TestFig19MatrixMoreEfficient(t *testing.T) {
	s, err := Fig19MatrixEfficiency(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range s.Rows {
		m, f := parseF(t, row[1]), parseF(t, row[2])
		if m <= f {
			t.Errorf("task %s: matrix eff %.0f%% not above falkon %.0f%%", row[0], m, f)
		}
		if m < 50 {
			t.Errorf("task %s: matrix eff %.0f%% too low (paper: 92-97%%)", row[0], m)
		}
	}
}

func TestCSVEscaping(t *testing.T) {
	s := &Series{
		ID:         "figXX",
		Columns:    []string{"plain", "with,comma", "with\"quote"},
		Rows:       [][]string{{"a", "b,c", `d"e`}},
		PaperNotes: []string{"note"},
	}
	got := s.CSV()
	want := "plain,\"with,comma\",\"with\"\"quote\"\na,\"b,c\",\"d\"\"e\"\n# paper: note\n"
	if got != want {
		t.Errorf("CSV escaping:\n got %q\nwant %q", got, want)
	}
}

func TestRenderAndByID(t *testing.T) {
	s, err := Fig11Efficiency(quick())
	if err != nil {
		t.Fatal(err)
	}
	out := s.Render()
	if !strings.Contains(out, "fig11") || !strings.Contains(out, "paper:") {
		t.Errorf("render missing parts:\n%s", out)
	}
	if ByID("fig07") == nil || ByID("tab01") == nil {
		t.Error("ByID missing known figures")
	}
	if ByID("fig99") != nil {
		t.Error("ByID invented a figure")
	}
}
