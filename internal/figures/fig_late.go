package figures

import (
	"fmt"
	"time"

	"zht/internal/core"
	"zht/internal/sim"
)

// Fig12Replication — replication latency overhead vs replica count:
// real measurements at small scale plus the simulator's async/sync
// comparison.
func Fig12Replication(o Options) (*Series, error) {
	s := &Series{
		ID:      "fig12",
		Title:   "Replication overhead vs scale (real in-proc; sim async vs sync)",
		Columns: []string{"nodes", "r=0 (ms)", "r=1 (ms)", "r=2 (ms)", "ov r=1", "ov r=2", "sim async r1/r2", "sim sync r1/r2"},
		PaperNotes: []string{
			"1 replica ≈ +20%, 2 replicas ≈ +30% (async); sync would be ≈ +100%/+200%",
		},
	}
	ops := o.scale(800, 100)
	scales := []int{4, 8, 16}
	if o.Quick {
		scales = []int{4}
	} else {
		scales = append(scales, 32, 64)
	}
	for _, n := range scales {
		var lats [3]time.Duration
		for r := 0; r <= 2; r++ {
			cfg := core.Config{NumPartitions: 1024, Replicas: r, RetryBase: time.Millisecond, Metrics: o.Metrics}
			d, _, err := core.BootstrapInproc(cfg, n)
			if err != nil {
				return nil, err
			}
			st, err := runAllToAll(d, n, ops)
			d.Drain()
			d.Close()
			if err != nil {
				return nil, err
			}
			lats[r] = st.Latency()
		}
		ov := func(r int) string {
			return fmt.Sprintf("%+.0f%%", (float64(lats[r])/float64(lats[0])-1)*100)
		}
		// Simulator view at the same scale.
		p0 := sim.DefaultParams(n, 1)
		r0, _ := sim.Analytic(p0)
		simOv := func(r int, sync bool) string {
			p := p0
			p.Replicas = r
			p.SyncReplication = sync
			res, _ := sim.Analytic(p)
			return fmt.Sprintf("%+.0f%%", (res.Latency/r0.Latency-1)*100)
		}
		s.Rows = append(s.Rows, []string{
			fmt.Sprint(n), ms(lats[0]), ms(lats[1]), ms(lats[2]), ov(1), ov(2),
			simOv(1, false) + "/" + simOv(2, false),
			simOv(1, true) + "/" + simOv(2, true),
		})
	}
	return s, nil
}

// instanceScales picks Figure 13/14 node counts.
func instanceScales(o Options) []int {
	if o.Quick {
		return []int{64, 1024}
	}
	return []int{64, 256, 1024, 4096, 8192}
}

// Fig13InstancesLatency — latency with 1/2/4/8 instances per node.
func Fig13InstancesLatency(o Options) (*Series, error) {
	s := &Series{
		ID:      "fig13",
		Title:   "Latency vs scale for 1-8 instances per node (simulated; DES cross-check ≤1K)",
		Columns: []string{"nodes", "1/node (ms)", "2/node (ms)", "4/node (ms)", "8/node (ms)", "DES 1/node (ms)"},
		PaperNotes: []string{
			"1.1 ms at 8K×1; 2.08 ms at 8K×4 (32K instances); more instances → higher latency",
		},
	}
	for _, n := range instanceScales(o) {
		row := []string{fmt.Sprint(n)}
		for _, inst := range []int{1, 2, 4, 8} {
			r, err := sim.Analytic(sim.DefaultParams(n, inst))
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.3f", r.Latency*1e3))
		}
		des := "-"
		if n <= 1024 {
			dur := 0.2
			if o.Quick {
				dur = 0.05
			}
			r, err := sim.DiscreteEventObserved(sim.DefaultParams(n, 1), dur, 1, o.Metrics)
			if err != nil {
				return nil, err
			}
			des = fmt.Sprintf("%.3f", r.Latency*1e3)
		}
		row = append(row, des)
		s.Rows = append(s.Rows, row)
	}
	return s, nil
}

// Fig14InstancesThroughput — aggregate throughput for the same sweep.
func Fig14InstancesThroughput(o Options) (*Series, error) {
	s := &Series{
		ID:      "fig14",
		Title:   "Aggregate throughput vs scale for 1-8 instances per node (simulated)",
		Columns: []string{"nodes", "1/node (Mops/s)", "2/node (Mops/s)", "4/node (Mops/s)", "8/node (Mops/s)"},
		PaperNotes: []string{
			"7.3M ops/s at 8K×1 → 16.1M at 8K×4 (2.2x); >18M at 32K instances",
		},
	}
	for _, n := range instanceScales(o) {
		row := []string{fmt.Sprint(n)}
		for _, inst := range []int{1, 2, 4, 8} {
			r, err := sim.Analytic(sim.DefaultParams(n, inst))
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f", r.Throughput/1e6))
		}
		s.Rows = append(s.Rows, row)
	}
	return s, nil
}

// Fig15Migration — time to double the number of servers under client
// load (dynamic membership cost).
func Fig15Migration(o Options) (*Series, error) {
	s := &Series{
		ID:      "fig15",
		Title:   "Time to double servers via live joins, under client load (real)",
		Columns: []string{"transition", "time (ms)", "ops during join ok"},
		PaperNotes: []string{
			"roughly constant ≈2 s per doubling from 2→4 up to 16→32 (32-node cluster)",
		},
	}
	maxN := 32
	if o.Quick {
		maxN = 8
	}
	cfg := core.Config{NumPartitions: 1024, Replicas: 0, RetryBase: time.Millisecond, Metrics: o.Metrics}
	d, _, err := core.BootstrapInproc(cfg, 2)
	if err != nil {
		return nil, err
	}
	defer d.Close()
	c, err := d.NewClient()
	if err != nil {
		return nil, err
	}
	// Seed data so migrations move real content.
	for i := 0; i < o.scale(2000, 200); i++ {
		if err := c.Insert(benchKey(0, i), benchValue); err != nil {
			return nil, err
		}
	}
	// Background load during joins.
	stop := make(chan struct{})
	loadErr := make(chan error, 1)
	go func() {
		lc, err := d.NewClient()
		if err != nil {
			loadErr <- err
			return
		}
		i := 0
		for {
			select {
			case <-stop:
				loadErr <- nil
				return
			default:
			}
			if err := lc.Insert(benchKey(99, i), benchValue); err != nil {
				loadErr <- fmt.Errorf("op during join: %w", err)
				return
			}
			i++
		}
	}()
	joined := 0
	for size := 2; size < maxN; size *= 2 {
		start := time.Now()
		for j := 0; j < size; j++ {
			if _, err := d.Join(core.Endpoint{
				Addr: fmt.Sprintf("zht-grow-%04d", joined),
				Node: fmt.Sprintf("node-grow-%04d", joined),
			}); err != nil {
				close(stop)
				return nil, fmt.Errorf("join %d during %d->%d: %w", j, size, size*2, err)
			}
			joined++
		}
		s.Rows = append(s.Rows, []string{
			fmt.Sprintf("%d to %d", size, size*2),
			ms(time.Since(start)),
			"yes",
		})
	}
	close(stop)
	if err := <-loadErr; err != nil {
		return nil, err
	}
	return s, nil
}
