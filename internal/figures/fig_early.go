package figures

import (
	"fmt"
	"math/rand"
	"time"

	"zht/internal/baselines/cassring"
	"zht/internal/baselines/cmpi"
	"zht/internal/baselines/memcache"
	"zht/internal/core"
	"zht/internal/fusionfs/gpfssim"
	"zht/internal/novoht"
	"zht/internal/sim"
	"zht/internal/transport"
	"zht/internal/wire"
)

// Fig01GPFS — time per file create on GPFS vs scale, one directory vs
// many directories (the motivation figure).
func Fig01GPFS(o Options) (*Series, error) {
	m := gpfssim.Default()
	s := &Series{
		ID:      "fig01",
		Title:   "GPFS time per create vs cores (model of the measured baseline)",
		Columns: []string{"cores", "many-dir (ms)", "one-dir (ms)"},
		PaperNotes: []string{
			"tens of ms at 4 cores; one-dir ~63,000 ms at 16K cores",
			"many-dir grows ~linearly past server saturation (4-32 clients)",
		},
	}
	for _, n := range []int{1, 4, 16, 64, 256, 1024, 4096, 16384} {
		s.Rows = append(s.Rows, []string{
			fmt.Sprint(n),
			ms(m.TimePerOp(n, false)),
			ms(m.TimePerOp(n, true)),
		})
	}
	return s, nil
}

// Tab01Features — the feature comparison matrix, with the dynamic
// properties probed against the actual implementations rather than
// asserted.
func Tab01Features(o Options) (*Series, error) {
	s := &Series{
		ID:      "tab01",
		Title:   "Feature comparison (probed against implementations)",
		Columns: []string{"system", "impl", "routing", "persistence", "dynamic membership", "append"},
		PaperNotes: []string{
			"Cassandra: log(N), persistent, dynamic, no append",
			"Memcached: 2(client-hash), volatile, static, no append",
			"Dynamo: 0 to log(N), persistent, dynamic, no append (not open source)",
			"ZHT: 0 to 2, persistent, dynamic, append",
		},
	}
	// Probe ZHT append.
	d, _, err := core.BootstrapInproc(core.Config{NumPartitions: 8, RetryBase: time.Millisecond, Metrics: o.Metrics}, 2)
	if err != nil {
		return nil, err
	}
	defer d.Close()
	zc, err := d.NewClient()
	if err != nil {
		return nil, err
	}
	zhtAppend := "no"
	if err := zc.Append("probe", []byte("x")); err == nil {
		zhtAppend = "yes"
	}
	// Probe memcache append rejection.
	mcSrv := memcache.NewServer(0)
	mcAppend := "no"
	if resp := mcSrv.Handle(&wire.Request{Op: wire.OpAppend, Key: "k", Value: []byte("v")}); resp.Status == wire.StatusOK {
		mcAppend = "yes"
	}
	// Probe cassring append rejection + hop counting.
	reg := transport.NewRegistry()
	cc, err := cassring.NewCluster(4, cassring.Options{}, func(addr string, h transport.Handler) (transport.Listener, error) {
		return reg.Listen(addr, h)
	}, reg.NewClient())
	if err != nil {
		return nil, err
	}
	defer cc.Close()
	cassAppend := "no"
	if resp := cc.Nodes[0].Handle(&wire.Request{Op: wire.OpAppend, Key: "k", Value: []byte("v")}); resp.Status == wire.StatusOK {
		cassAppend = "yes"
	}
	cassDynamic := "no"
	if _, err := cc.Join(); err == nil {
		cassDynamic = "yes"
	}
	// Probe the C-MPI stand-in (Kademlia): no append.
	cmpiCluster, err := cmpi.NewCluster(4, func(addr string, h transport.Handler) (transport.Listener, error) {
		return reg.Listen(addr, h)
	})
	if err != nil {
		return nil, err
	}
	cmpiAppend := "no"
	if resp := cmpiCluster.Nodes[0].Handle(&wire.Request{Op: wire.OpAppend, Key: "k", Value: []byte("v")}); resp.Status == wire.StatusOK {
		cmpiAppend = "yes"
	}
	// Probe ZHT dynamic membership.
	zhtDynamic := "no"
	if _, err := d.Join(core.Endpoint{Addr: "tab01-join", Node: "tab01-node"}); err == nil {
		zhtDynamic = "yes"
	}
	s.Rows = [][]string{
		{"Cassandra (cassring)", "Go", "log(N)", "yes", cassDynamic, cassAppend},
		{"Memcached (memcache)", "Go", "2", "no", "no", mcAppend},
		{"C-MPI (cmpi/Kademlia)", "Go", "log(N)", "no", "no", cmpiAppend},
		{"Dynamo", "Java", "0 to log(N)", "yes", "yes", "no (proprietary; cassring is its stand-in)"},
		{"ZHT (this repo)", "Go", "0 to 2", "yes", zhtDynamic, zhtAppend},
	}
	return s, nil
}

// Fig04Partitions — latency vs partitions per instance: the paper
// shows near-flat 0.73→0.77 ms from 1 to 1K partitions, the result
// that justifies many-partitions-per-instance migration.
func Fig04Partitions(o Options) (*Series, error) {
	s := &Series{
		ID:      "fig04",
		Title:   "Latency vs partitions per instance (1 instance, real)",
		Columns: []string{"partitions", "latency (ms)"},
		PaperNotes: []string{
			"0.73 ms at 1 partition → 0.77 ms at 1K partitions (flat)",
		},
	}
	ops := o.scale(3000, 300)
	for _, parts := range []int{1, 10, 100, 1000} {
		cfg := core.Config{NumPartitions: parts, Replicas: 0, RetryBase: time.Millisecond, Metrics: o.Metrics}
		d, _, err := core.BootstrapInproc(cfg, 1)
		if err != nil {
			return nil, err
		}
		st, err := runAllToAll(d, 1, ops)
		d.Close()
		if err != nil {
			return nil, err
		}
		s.Rows = append(s.Rows, []string{fmt.Sprint(parts), ms(st.Latency())})
	}
	return s, nil
}

// Fig05Bootstrap — bootstrap time vs scale: simulator components at
// BG/P scale plus real in-process bootstrap timing.
func Fig05Bootstrap(o Options) (*Series, error) {
	s := &Series{
		ID:      "fig05",
		Title:   "Bootstrap time vs nodes (model components + real in-proc bootstrap)",
		Columns: []string{"nodes", "partition boot (s)", "neighbor list (s)", "server start (s)", "zht total (s)", "real in-proc (ms)"},
		PaperNotes: []string{
			"ZHT bootstrap ≈8 s at 1K nodes, ≈10 s at 8K (batch job start ≈150 s)",
		},
	}
	realMax := o.scale(256, 64)
	for _, n := range []int{64, 128, 256, 512, 1024, 2048, 4096, 8192} {
		b := sim.Bootstrap(n)
		real := "-"
		if n <= realMax {
			start := time.Now()
			d, _, err := core.BootstrapInproc(core.Config{NumPartitions: 8192, RetryBase: time.Millisecond, Metrics: o.Metrics}, n)
			if err != nil {
				return nil, err
			}
			el := time.Since(start)
			d.Close()
			real = ms(el)
		}
		s.Rows = append(s.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.1f", b.PartitionBoot),
			fmt.Sprintf("%.2f", b.NeighborList),
			fmt.Sprintf("%.1f", b.ServerStart),
			fmt.Sprintf("%.1f", b.NeighborList+b.ServerStart),
			real,
		})
	}
	return s, nil
}

// Fig06NoVoHT — NoVoHT vs KyotoCabinet vs BerkeleyDB vs plain map,
// latency per op at growing key counts. Scales are divided by 10
// relative to the paper (1M/10M/100M → 100K/1M/10M full, smaller in
// quick mode) to fit a laptop run; the shape — NoVoHT flat and close
// to the in-memory map, disk stores slower and degrading — is the
// result under test.
func Fig06NoVoHT(o Options) (*Series, error) {
	s := &Series{
		ID:      "fig06",
		Title:   "Single-node store latency vs key count (insert+get+remove avg, µs)",
		Columns: []string{"pairs", "novoht (µs)", "novoht-nopersist (µs)", "kyoto (µs)", "bdb (µs)", "map (µs)"},
		PaperNotes: []string{
			"NoVoHT ≈flat with scale; persistence adds ~3 µs; KyotoCabinet and BerkeleyDB slower and degrade with scale",
		},
	}
	// Even quick mode needs enough pairs that the disk stores outgrow
	// their caches; below that the comparison is not meaningful.
	counts := []int{o.scale(100_000, 20_000), o.scale(1_000_000, 60_000)}
	if !o.Quick {
		counts = append(counts, 4_000_000)
	}
	for _, n := range counts {
		row := []string{fmt.Sprint(n)}
		for _, which := range []string{"novoht", "novolatile", "kyoto", "bdb", "map"} {
			lat, err := storeLatency(which, n)
			if err != nil {
				return nil, fmt.Errorf("%s at %d: %w", which, n, err)
			}
			row = append(row, us(lat))
		}
		s.Rows = append(s.Rows, row)
	}
	return s, nil
}

// storeLatency measures average per-op latency of n inserts + n gets
// + n removes on the named store.
func storeLatency(which string, n int) (time.Duration, error) {
	dir, err := mkTempDir()
	if err != nil {
		return 0, err
	}
	defer rmTempDir(dir)
	type kv interface {
		set(k string, v []byte) error
		get(k string) error
		del(k string) error
		close() error
	}
	var store kv
	switch which {
	case "novoht":
		st, err := novoht.Open(novoht.Options{Path: dir + "/n.log", CompactEvery: -1, GCRatio: 0.99})
		if err != nil {
			return 0, err
		}
		store = novohtKV{st}
	case "novolatile":
		st, err := novoht.Open(novoht.Options{})
		if err != nil {
			return 0, err
		}
		store = novohtKV{st}
	case "kyoto":
		store, err = openKyotoKV(dir + "/k.db")
		if err != nil {
			return 0, err
		}
	case "bdb":
		store, err = openBdbKV(dir + "/b.db")
		if err != nil {
			return 0, err
		}
	case "map":
		store = mapKV{m: map[string][]byte{}}
	default:
		return 0, fmt.Errorf("unknown store %q", which)
	}
	defer store.close()
	// Access keys in a fixed random permutation: ZHT keys arrive in
	// hash order, so sequential-key locality (which flatters B-trees)
	// would misrepresent the workload. The same order is used for
	// every store.
	perm := rand.New(rand.NewSource(1)).Perm(n)
	start := time.Now()
	for _, i := range perm {
		if err := store.set(benchKey(0, i), benchValue); err != nil {
			return 0, err
		}
	}
	for _, i := range perm {
		if err := store.get(benchKey(0, i)); err != nil {
			return 0, err
		}
	}
	for _, i := range perm {
		if err := store.del(benchKey(0, i)); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(3*n), nil
}
