package figures

import (
	"errors"
	"fmt"
	"time"

	"zht/internal/baselines/cassring"
	"zht/internal/baselines/memcache"
	"zht/internal/core"
	"zht/internal/sim"
	"zht/internal/transport"
)

// netDeployment boots n ZHT instances over a real loopback transport.
// cfg.Metrics, when set, also wires the transport-level instruments.
func netDeployment(n int, cfg core.Config, kind string) (*core.Deployment, func(), error) {
	var caller transport.Caller
	switch kind {
	case "tcp-cache":
		caller = transport.NewTCPClient(transport.TCPClientOptions{ConnCache: true, Metrics: cfg.Metrics})
	case "tcp-nocache":
		caller = transport.NewTCPClient(transport.TCPClientOptions{ConnCache: false, Metrics: cfg.Metrics})
	case "udp":
		caller = transport.NewUDPClient(transport.UDPClientOptions{Timeout: 2 * time.Second, Metrics: cfg.Metrics})
	default:
		return nil, nil, fmt.Errorf("figures: unknown transport %q", kind)
	}
	var lns []transport.Listener
	var switches []*core.HandlerSwitch
	eps := make([]core.Endpoint, n)
	for i := range eps {
		hs := &core.HandlerSwitch{}
		var ln transport.Listener
		var err error
		if kind == "udp" {
			ln, err = transport.ListenUDP("127.0.0.1:0", hs.Handle, transport.WithServerMetrics(cfg.Metrics))
		} else {
			ln, err = transport.ListenTCP("127.0.0.1:0", hs.Handle, transport.EventDriven, transport.WithServerMetrics(cfg.Metrics))
		}
		if err != nil {
			for _, l := range lns {
				l.Close()
			}
			caller.Close()
			return nil, nil, err
		}
		lns = append(lns, ln)
		switches = append(switches, hs)
		eps[i] = core.Endpoint{Addr: ln.Addr(), Node: fmt.Sprintf("n%03d", i)}
	}
	d, err := core.Bootstrap(cfg, eps, func(addr string, h transport.Handler) (transport.Listener, error) {
		for i, ep := range eps {
			if ep.Addr == addr {
				switches[i].Set(h)
				return nopListener{addr}, nil
			}
		}
		return nil, errors.New("figures: unbound address")
	}, caller)
	if err != nil {
		for _, l := range lns {
			l.Close()
		}
		caller.Close()
		return nil, nil, err
	}
	cleanup := func() {
		d.Close()
		for _, l := range lns {
			l.Close()
		}
		caller.Close()
	}
	return d, cleanup, nil
}

type nopListener struct{ addr string }

func (l nopListener) Addr() string { return l.addr }
func (l nopListener) Close() error { return nil }

// measureNet runs the all-to-all workload at scale n over the given
// transport and returns the stats.
func measureNet(o Options, n, opsPer int, kind string) (opStats, error) {
	cfg := core.Config{NumPartitions: 1024, Replicas: 0, RetryBase: time.Millisecond, Metrics: o.Metrics}
	d, cleanup, err := netDeployment(n, cfg, kind)
	if err != nil {
		return opStats{}, err
	}
	defer cleanup()
	return runAllToAll(d, n, opsPer)
}

// measureMemcache runs set/get/delete over n real memcached-style
// servers on loopback TCP.
func measureMemcache(n, opsPer int) (opStats, error) {
	caller := transport.NewTCPClient(transport.TCPClientOptions{ConnCache: true})
	defer caller.Close()
	var addrs []string
	var lns []transport.Listener
	defer func() {
		for _, l := range lns {
			l.Close()
		}
	}()
	for i := 0; i < n; i++ {
		srv := memcache.NewServer(0)
		ln, err := transport.ListenTCP("127.0.0.1:0", srv.Handle, transport.EventDriven)
		if err != nil {
			return opStats{}, err
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr())
	}
	stats := opStats{}
	start := time.Now()
	done := make(chan error, n)
	for ci := 0; ci < n; ci++ {
		go func(ci int) {
			c, err := memcache.NewClient(addrs, caller)
			if err != nil {
				done <- err
				return
			}
			for i := 0; i < opsPer; i++ {
				k := benchKey(ci, i)
				if err := c.Set(k, benchValue); err != nil {
					done <- err
					return
				}
				if _, err := c.Get(k); err != nil {
					done <- err
					return
				}
				if err := c.Delete(k); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(ci)
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			return opStats{}, err
		}
	}
	stats.Ops = n * opsPer * 3
	stats.Elapsed = time.Since(start)
	return stats, nil
}

// simZHTLatency returns the modeled ZHT latency (TCP-cached/UDP) at
// BG/P scale.
func simZHTLatency(nodes int) (time.Duration, error) {
	r, err := sim.Analytic(sim.DefaultParams(nodes, 1))
	if err != nil {
		return 0, err
	}
	return time.Duration(r.Latency * 1e9), nil
}

// Modeled deltas for the other transports/baselines at simulated
// scales, anchored on the paper's curves: TCP without connection
// caching pays a dial per op; Memcached starts at ~1.1 ms and
// converges toward ZHT's curve at scale.
const dialOverhead = 550 * time.Microsecond

func simNoCacheLatency(nodes int) (time.Duration, error) {
	l, err := simZHTLatency(nodes)
	if err != nil {
		return 0, err
	}
	return l + dialOverhead, nil
}

func simMemcachedLatency(nodes int) (time.Duration, error) {
	l, err := simZHTLatency(nodes)
	if err != nil {
		return 0, err
	}
	base, err := simZHTLatency(1)
	if err != nil {
		return 0, err
	}
	return 1050*time.Microsecond + (l-base)/2, nil
}

// realScales / simScales pick the sweep points.
func realScales(o Options) []int {
	if o.Quick {
		return []int{1, 2}
	}
	return []int{1, 2, 4, 8}
}

var simScales = []int{64, 256, 1024, 4096, 8192}

// Fig07Latency — ZHT vs Memcached latency vs scale (BG/P): real
// loopback measurements at small scale, simulator beyond.
func Fig07Latency(o Options) (*Series, error) {
	s := &Series{
		ID:      "fig07",
		Title:   "Latency vs scale: transports and Memcached (real ≤8, simulated ≥64)",
		Columns: []string{"nodes", "source", "tcp-nocache (ms)", "tcp-cache (ms)", "udp (ms)", "memcached (ms)"},
		PaperNotes: []string{
			"TCP-cached ≈ UDP (<0.5 ms at 1 node, 1.1 ms at 8K); TCP w/o caching ~2x; Memcached 1.1→1.4 ms",
		},
	}
	ops := o.scale(1500, 150)
	for _, n := range realScales(o) {
		row := []string{fmt.Sprint(n), "real"}
		for _, kind := range []string{"tcp-nocache", "tcp-cache", "udp"} {
			st, err := measureNet(o, n, ops, kind)
			if err != nil {
				return nil, fmt.Errorf("%s at %d: %w", kind, n, err)
			}
			row = append(row, ms(st.Latency()))
		}
		mc, err := measureMemcache(n, ops)
		if err != nil {
			return nil, err
		}
		row = append(row, ms(mc.Latency()))
		s.Rows = append(s.Rows, row)
	}
	for _, n := range simScales {
		nc, err := simNoCacheLatency(n)
		if err != nil {
			return nil, err
		}
		zc, _ := simZHTLatency(n)
		mc, _ := simMemcachedLatency(n)
		s.Rows = append(s.Rows, []string{
			fmt.Sprint(n), "sim", ms(nc), ms(zc), ms(zc), ms(mc),
		})
	}
	return s, nil
}

// Fig09Throughput — same engines, throughput view.
func Fig09Throughput(o Options) (*Series, error) {
	s := &Series{
		ID:      "fig09",
		Title:   "Throughput vs scale (real ≤8, simulated ≥64)",
		Columns: []string{"nodes", "source", "tcp-cache (ops/s)", "udp (ops/s)", "memcached (ops/s)"},
		PaperNotes: []string{
			"near-linear growth; ~7.4M ops/s at 8K nodes for both ZHT (TCP-cached) and Memcached",
		},
	}
	ops := o.scale(1500, 150)
	for _, n := range realScales(o) {
		st, err := measureNet(o, n, ops, "tcp-cache")
		if err != nil {
			return nil, err
		}
		ud, err := measureNet(o, n, ops, "udp")
		if err != nil {
			return nil, err
		}
		mc, err := measureMemcache(n, ops)
		if err != nil {
			return nil, err
		}
		s.Rows = append(s.Rows, []string{
			fmt.Sprint(n), "real",
			fmt.Sprintf("%.0f", st.Throughput()),
			fmt.Sprintf("%.0f", ud.Throughput()),
			fmt.Sprintf("%.0f", mc.Throughput()),
		})
	}
	for _, n := range simScales {
		r, err := sim.Analytic(sim.DefaultParams(n, 1))
		if err != nil {
			return nil, err
		}
		mcLat, _ := simMemcachedLatency(n)
		mcThr := float64(n) / mcLat.Seconds()
		s.Rows = append(s.Rows, []string{
			fmt.Sprint(n), "sim",
			fmt.Sprintf("%.0f", r.Throughput),
			fmt.Sprintf("%.0f", r.Throughput),
			fmt.Sprintf("%.0f", mcThr),
		})
	}
	return s, nil
}

// clusterScales for the HEC-Cluster comparison (Figures 8/10).
func clusterScales(o Options) []int {
	if o.Quick {
		return []int{1, 2, 4, 8}
	}
	return []int{1, 2, 4, 8, 16, 32, 64}
}

// clusterNetLatency is the injected per-hop latency standing in for
// the HEC-Cluster's Ethernet (all three systems pay it equally; the
// point of the figure is Cassandra paying it log(N) times).
const clusterNetLatency = 120 * time.Microsecond

// runClusterComparison measures ZHT, Cassandra (cassring) and
// Memcached on the same in-process network with injected latency.
func runClusterComparison(o Options) (map[string]map[int]opStats, error) {
	ops := o.scale(400, 60)
	out := map[string]map[int]opStats{"zht": {}, "cass": {}, "memcached": {}}
	for _, n := range clusterScales(o) {
		// ZHT.
		d, reg, err := core.BootstrapInproc(core.Config{NumPartitions: 1024, Replicas: 0, RetryBase: time.Millisecond, Metrics: o.Metrics}, n)
		if err != nil {
			return nil, err
		}
		reg.SetLatency(func(string) time.Duration { return clusterNetLatency })
		st, err := runAllToAll(d, n, ops)
		d.Close()
		if err != nil {
			return nil, err
		}
		out["zht"][n] = st

		// Cassandra-style.
		regC := transport.NewRegistry()
		regC.SetLatency(func(string) time.Duration { return clusterNetLatency })
		cl, err := cassring.NewCluster(n, cassring.Options{}, func(addr string, h transport.Handler) (transport.Listener, error) {
			return regC.Listen(addr, h)
		}, regC.NewClient())
		if err != nil {
			return nil, err
		}
		cst, err := runCassWorkload(cl, regC, n, ops)
		cl.Close()
		if err != nil {
			return nil, err
		}
		out["cass"][n] = cst

		// Memcached-style.
		regM := transport.NewRegistry()
		regM.SetLatency(func(string) time.Duration { return clusterNetLatency })
		mst, err := runMemcacheInproc(regM, n, ops)
		if err != nil {
			return nil, err
		}
		out["memcached"][n] = mst
	}
	return out, nil
}

func runCassWorkload(cl *cassring.Cluster, reg *transport.Registry, nClients, opsPer int) (opStats, error) {
	done := make(chan error, nClients)
	start := time.Now()
	for ci := 0; ci < nClients; ci++ {
		go func(ci int) {
			c := cl.NewClient(reg.NewClient())
			for i := 0; i < opsPer; i++ {
				k := benchKey(ci, i)
				if err := c.Put(k, benchValue); err != nil {
					done <- err
					return
				}
				if _, err := c.Get(k); err != nil {
					done <- err
					return
				}
				if err := c.Delete(k); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(ci)
	}
	for i := 0; i < nClients; i++ {
		if err := <-done; err != nil {
			return opStats{}, err
		}
	}
	return opStats{Ops: nClients * opsPer * 3, Elapsed: time.Since(start)}, nil
}

func runMemcacheInproc(reg *transport.Registry, n, opsPer int) (opStats, error) {
	var addrs []string
	for i := 0; i < n; i++ {
		srv := memcache.NewServer(0)
		addr := fmt.Sprintf("mc-%03d", i)
		if _, err := reg.Listen(addr, srv.Handle); err != nil {
			return opStats{}, err
		}
		addrs = append(addrs, addr)
	}
	done := make(chan error, n)
	start := time.Now()
	for ci := 0; ci < n; ci++ {
		go func(ci int) {
			c, err := memcache.NewClient(addrs, reg.NewClient())
			if err != nil {
				done <- err
				return
			}
			for i := 0; i < opsPer; i++ {
				k := benchKey(ci, i)
				if err := c.Set(k, benchValue); err != nil {
					done <- err
					return
				}
				if _, err := c.Get(k); err != nil {
					done <- err
					return
				}
				if err := c.Delete(k); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(ci)
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			return opStats{}, err
		}
	}
	return opStats{Ops: n * opsPer * 3, Elapsed: time.Since(start)}, nil
}

// Fig08ClusterLatency — ZHT vs Cassandra vs Memcached latency on the
// HEC-Cluster profile.
func Fig08ClusterLatency(o Options) (*Series, error) {
	data, err := runClusterComparison(o)
	if err != nil {
		return nil, err
	}
	s := &Series{
		ID:      "fig08",
		Title:   "Cluster latency: ZHT vs Cassandra vs Memcached (same injected network)",
		Columns: []string{"nodes", "zht (ms)", "cassandra (ms)", "memcached (ms)"},
		PaperNotes: []string{
			"ZHT far below Cassandra (log-routing); Memcached slightly better than ZHT (no disk writes)",
		},
	}
	for _, n := range clusterScales(o) {
		s.Rows = append(s.Rows, []string{
			fmt.Sprint(n),
			ms(data["zht"][n].Latency()),
			ms(data["cass"][n].Latency()),
			ms(data["memcached"][n].Latency()),
		})
	}
	return s, nil
}

// Fig10ClusterThroughput — throughput view of the same comparison.
func Fig10ClusterThroughput(o Options) (*Series, error) {
	data, err := runClusterComparison(o)
	if err != nil {
		return nil, err
	}
	s := &Series{
		ID:      "fig10",
		Title:   "Cluster throughput: ZHT vs Cassandra vs Memcached",
		Columns: []string{"nodes", "zht (ops/s)", "cassandra (ops/s)", "memcached (ops/s)", "zht/cass"},
		PaperNotes: []string{
			"~7x gap between ZHT and Cassandra at 64 nodes; Memcached ~27% above ZHT",
		},
	}
	for _, n := range clusterScales(o) {
		z, c, m := data["zht"][n], data["cass"][n], data["memcached"][n]
		ratio := z.Throughput() / c.Throughput()
		s.Rows = append(s.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.0f", z.Throughput()),
			fmt.Sprintf("%.0f", c.Throughput()),
			fmt.Sprintf("%.0f", m.Throughput()),
			fmt.Sprintf("%.1fx", ratio),
		})
	}
	return s, nil
}

// Fig11Efficiency — measured small-scale efficiency plus simulated
// efficiency to 1M nodes.
func Fig11Efficiency(o Options) (*Series, error) {
	s := &Series{
		ID:      "fig11",
		Title:   "Efficiency vs scale (simulated; measured/simulated agree within ~3% in the paper)",
		Columns: []string{"nodes", "latency (ms)", "efficiency"},
		PaperNotes: []string{
			"100% at 2 nodes (0.6 ms) → ~51% at 8K (1.1 ms) → ~8% at 1M (≈7 ms, still ~150M ops/s)",
		},
	}
	base, err := sim.Analytic(sim.DefaultParams(2, 1))
	if err != nil {
		return nil, err
	}
	for _, n := range []int{2, 64, 1024, 8192, 65536, 1 << 20} {
		p := sim.DefaultParams(n, 1)
		r, err := sim.Analytic(p)
		if err != nil {
			return nil, err
		}
		eff := sim.Efficiency(r, p, base.Latency)
		s.Rows = append(s.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.3f", r.Latency*1e3),
			fmt.Sprintf("%.0f%%", eff*100),
		})
	}
	return s, nil
}
