package falkon

import (
	"testing"
	"time"

	"zht/internal/matrix"
	"zht/internal/transport"
)

func newFalkon(t *testing.T, executors int, service time.Duration) *Cluster {
	t.Helper()
	reg := transport.NewRegistry()
	c, err := NewCluster(executors, service, func(addr string, h transport.Handler) (transport.Listener, error) {
		return reg.Listen(addr, h)
	}, reg.NewClient())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func TestWorkloadCompletes(t *testing.T) {
	c := newFalkon(t, 4, 10*time.Microsecond)
	c.Dispatcher.Submit(matrix.MakeSleepTasks(200, 0))
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && c.TotalExecuted() < 200 {
		time.Sleep(time.Millisecond)
	}
	if got := c.TotalExecuted(); got != 200 {
		t.Fatalf("executed %d/200", got)
	}
	if c.Dispatcher.QueueLen() != 0 {
		t.Errorf("queue not drained: %d", c.Dispatcher.QueueLen())
	}
}

// TestCentralizedSaturation shows the structural property the paper
// measures: with a per-dispatch service time, throughput is capped at
// 1/serviceTime regardless of executor count (Falkon saturates at
// ~1700 tasks/s in the paper).
func TestCentralizedSaturation(t *testing.T) {
	const service = 2 * time.Millisecond // cap = 500 tasks/s
	c := newFalkon(t, 16, service)
	const n = 300
	start := time.Now()
	c.Dispatcher.Submit(matrix.MakeSleepTasks(n, 0))
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && c.TotalExecuted() < n {
		time.Sleep(time.Millisecond)
	}
	if c.TotalExecuted() < n {
		t.Fatalf("executed %d/%d", c.TotalExecuted(), n)
	}
	rate := float64(n) / time.Since(start).Seconds()
	cap := 1.0 / service.Seconds()
	if rate > cap*1.3 {
		t.Errorf("throughput %.0f tasks/s exceeds the centralized cap %.0f", rate, cap)
	}
	if rate < cap*0.3 {
		t.Errorf("throughput %.0f tasks/s far below the cap %.0f; dispatcher broken", rate, cap)
	}
}

func TestEfficiencyDropsForShortTasks(t *testing.T) {
	// Figure 19: Falkon's efficiency falls as tasks shorten, because
	// the fixed per-task dispatch cost dominates.
	const service = 2 * time.Millisecond
	effFor := func(dur time.Duration) float64 {
		c := newFalkon(t, 8, service)
		defer c.Stop()
		_, eff, err := c.RunWorkload(matrix.MakeSleepTasks(64, dur), 60*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return eff
	}
	long := effFor(40 * time.Millisecond)
	short := effFor(4 * time.Millisecond)
	if short >= long {
		t.Errorf("efficiency short=%.2f >= long=%.2f; dispatch overhead should hurt short tasks", short, long)
	}
	if long < 0.3 {
		t.Errorf("long-task efficiency %.2f unexpectedly low", long)
	}
}

func TestNoExecutorsRejected(t *testing.T) {
	reg := transport.NewRegistry()
	if _, err := NewCluster(0, 0, func(addr string, h transport.Handler) (transport.Listener, error) {
		return reg.Listen(addr, h)
	}, reg.NewClient()); err == nil {
		t.Error("zero executors accepted")
	}
}
