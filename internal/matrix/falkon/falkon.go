// Package falkon implements the Falkon baseline MATRIX is compared
// against (paper §V.C, Figures 18 and 19): a centralized light-weight
// task execution framework.
//
// "Falkon has a centralized architecture, and hence had limited
// scalability" — it "saturates at 1700 tasks/sec at 256-core scales".
// This implementation is faithful to that structure: a single
// dispatcher holds the task queue, every executor round-trips to it
// for each task, and the dispatcher spends a fixed service time per
// dispatch (request parsing, state update, response) under one lock —
// exactly the serialization that caps a centralized design.
package falkon

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"zht/internal/matrix"
	"zht/internal/transport"
	"zht/internal/wire"
)

// DefaultServiceTime calibrates the dispatcher cap near the paper's
// measured 1700 tasks/sec.
const DefaultServiceTime = 550 * time.Microsecond

// Dispatcher is the centralized Falkon service.
type Dispatcher struct {
	mu          sync.Mutex
	queue       []*matrix.Task
	serviceTime time.Duration
	dispatched  atomic.Int64
}

// NewDispatcher creates a dispatcher; serviceTime <= 0 selects the
// default calibration.
func NewDispatcher(serviceTime time.Duration) *Dispatcher {
	if serviceTime <= 0 {
		serviceTime = DefaultServiceTime
	}
	return &Dispatcher{serviceTime: serviceTime}
}

// Submit enqueues tasks centrally.
func (d *Dispatcher) Submit(tasks []*matrix.Task) {
	d.mu.Lock()
	d.queue = append(d.queue, tasks...)
	d.mu.Unlock()
}

// Dispatched reports tasks handed to executors.
func (d *Dispatcher) Dispatched() int64 { return d.dispatched.Load() }

// QueueLen reports tasks still waiting.
func (d *Dispatcher) QueueLen() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.queue)
}

// Handle implements transport.Handler. OpRemove with key "next" pops
// one task; the per-dispatch service time is spent holding the lock,
// which is the centralized bottleneck.
func (d *Dispatcher) Handle(req *wire.Request) *wire.Response {
	switch {
	case req.Op == wire.OpRemove && req.Key == "next":
		d.mu.Lock()
		if d.serviceTime > 0 {
			time.Sleep(d.serviceTime)
		}
		if len(d.queue) == 0 {
			d.mu.Unlock()
			return &wire.Response{Status: wire.StatusNotFound}
		}
		t := d.queue[0]
		d.queue = d.queue[1:]
		d.mu.Unlock()
		d.dispatched.Add(1)
		return &wire.Response{Status: wire.StatusOK, Value: encodeOne(t)}
	case req.Op == wire.OpPing:
		return &wire.Response{Status: wire.StatusOK}
	}
	return &wire.Response{Status: wire.StatusError, Err: "falkon: unsupported request"}
}

func encodeOne(t *matrix.Task) []byte { return matrix.EncodeTaskForWire(t) }

// Executor pulls tasks from the dispatcher and runs them.
type Executor struct {
	dispatcher string
	caller     transport.Caller
	executed   atomic.Int64
	simulated  bool
	stop       chan struct{}
	wg         sync.WaitGroup
}

// NewExecutor creates an executor bound to the dispatcher address.
func NewExecutor(dispatcherAddr string, caller transport.Caller, simulatedTime bool) *Executor {
	return &Executor{
		dispatcher: dispatcherAddr, caller: caller,
		simulated: simulatedTime, stop: make(chan struct{}),
	}
}

// Start launches the executor loop.
func (e *Executor) Start() {
	e.wg.Add(1)
	go e.loop()
}

// Stop halts the executor.
func (e *Executor) Stop() {
	select {
	case <-e.stop:
	default:
		close(e.stop)
	}
	e.wg.Wait()
}

// Executed reports completed tasks.
func (e *Executor) Executed() int64 { return e.executed.Load() }

func (e *Executor) loop() {
	defer e.wg.Done()
	idle := time.Millisecond
	for {
		select {
		case <-e.stop:
			return
		default:
		}
		resp, err := e.caller.Call(e.dispatcher, &wire.Request{Op: wire.OpRemove, Key: "next"})
		if err != nil {
			return // dispatcher gone
		}
		if resp.Status == wire.StatusNotFound {
			select {
			case <-e.stop:
				return
			case <-time.After(idle):
			}
			continue
		}
		t, err := matrix.DecodeTaskFromWire(resp.Value)
		if err != nil {
			continue
		}
		if t.Duration > 0 && !e.simulated {
			time.Sleep(t.Duration)
		}
		e.executed.Add(1)
	}
}

// Cluster is a dispatcher plus executors.
type Cluster struct {
	Dispatcher *Dispatcher
	Executors  []*Executor
	workers    int
}

// NewCluster starts a Falkon deployment with the given executor
// count.
func NewCluster(executors int, serviceTime time.Duration,
	listen func(addr string, h transport.Handler) (transport.Listener, error),
	caller transport.Caller) (*Cluster, error) {
	if executors <= 0 {
		return nil, errors.New("falkon: need at least one executor")
	}
	d := NewDispatcher(serviceTime)
	if _, err := listen("falkon-dispatcher", d.Handle); err != nil {
		return nil, err
	}
	c := &Cluster{Dispatcher: d, workers: executors}
	for i := 0; i < executors; i++ {
		e := NewExecutor("falkon-dispatcher", caller, false)
		e.Start()
		c.Executors = append(c.Executors, e)
	}
	return c, nil
}

// TotalExecuted sums completed tasks.
func (c *Cluster) TotalExecuted() int64 {
	var n int64
	for _, e := range c.Executors {
		n += e.Executed()
	}
	return n
}

// Stop halts all executors.
func (c *Cluster) Stop() {
	for _, e := range c.Executors {
		e.Stop()
	}
}

// RunWorkload mirrors matrix.Cluster.RunWorkload for the baseline.
func (c *Cluster) RunWorkload(tasks []*matrix.Task, timeout time.Duration) (makespan time.Duration, efficiency float64, err error) {
	start := time.Now()
	c.Dispatcher.Submit(tasks)
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) && c.TotalExecuted() < int64(len(tasks)) {
		time.Sleep(500 * time.Microsecond)
	}
	if c.TotalExecuted() < int64(len(tasks)) {
		return 0, 0, fmt.Errorf("falkon: workload timed out: %d/%d", c.TotalExecuted(), len(tasks))
	}
	makespan = time.Since(start)
	var total time.Duration
	for _, t := range tasks {
		total += t.Duration
	}
	ideal := total / time.Duration(c.workers)
	if makespan > 0 {
		efficiency = float64(ideal) / float64(makespan)
	}
	return makespan, efficiency, nil
}
