package matrix

import (
	"testing"
	"time"

	"zht/internal/transport"
	"zht/internal/wire"
)

func TestSimulatedTimeMode(t *testing.T) {
	// SimulatedTime executes "long" tasks instantly while still
	// accounting their durations.
	c, _ := newMatrixCluster(t, 2, NodeOptions{Workers: 1, SimulatedTime: true}, false)
	tasks := MakeSleepTasks(100, time.Second) // 100 s of virtual work
	start := time.Now()
	if err := c.Submit(tasks, "balanced"); err != nil {
		t.Fatal(err)
	}
	if !c.WaitForCount(100, 10*time.Second) {
		t.Fatalf("only %d/100 done", c.TotalExecuted())
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("simulated time took %v of wall clock", el)
	}
	var busy time.Duration
	for _, nd := range c.Nodes {
		busy += nd.BusyTime()
	}
	if busy != 100*time.Second {
		t.Errorf("accounted busy time = %v, want 100s", busy)
	}
}

func TestStealFromDownedVictim(t *testing.T) {
	reg := transport.NewRegistry()
	c, err := NewCluster(2, NodeOptions{Workers: 1, PollMax: time.Millisecond}, nil,
		func(addr string, h transport.Handler) (transport.Listener, error) { return reg.Listen(addr, h) },
		reg.NewClient())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	// Kill node 1 outright (stop its executors AND make it
	// unreachable); node 0 still completes its local work while its
	// steal probes fail harmlessly.
	c.Nodes[1].Stop()
	reg.SetDown("matrix-0001", true)
	c.Nodes[0].Enqueue(MakeSleepTasks(50, 0)...)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && c.Nodes[0].Executed() < 50 {
		time.Sleep(time.Millisecond)
	}
	if got := c.Nodes[0].Executed(); got != 50 {
		t.Errorf("executed %d/50 with a dead peer", got)
	}
}

func TestLoadProbe(t *testing.T) {
	c, _ := newMatrixCluster(t, 1, NodeOptions{Workers: 1}, false)
	c.Stop() // freeze executors so the queue stays put
	c.Nodes[0].Enqueue(MakeSleepTasks(7, time.Hour)...)
	resp := c.Nodes[0].Handle(&wire.Request{Op: wire.OpLookup, Key: keyLoad})
	if resp.Status != wire.StatusOK {
		t.Fatalf("load probe: %v", resp.Status)
	}
	got := int(resp.Value[0]) | int(resp.Value[1])<<8 | int(resp.Value[2])<<16 | int(resp.Value[3])<<24
	if got != 7 {
		t.Errorf("load = %d, want 7", got)
	}
}

func TestSubmitMalformedBatch(t *testing.T) {
	c, _ := newMatrixCluster(t, 1, NodeOptions{}, false)
	resp := c.Nodes[0].Handle(&wire.Request{Op: wire.OpInsert, Key: keySubmit, Value: []byte("garbage")})
	if resp.Status != wire.StatusError {
		t.Errorf("malformed batch accepted: %v", resp.Status)
	}
}

func TestStealFromEmptyVictim(t *testing.T) {
	c, _ := newMatrixCluster(t, 1, NodeOptions{}, false)
	resp := c.Nodes[0].Handle(&wire.Request{Op: wire.OpLookup, Key: keySteal})
	if resp.Status != wire.StatusNotFound {
		t.Errorf("steal from empty queue = %v, want not-found", resp.Status)
	}
}

func TestTaskStatusWithoutZHT(t *testing.T) {
	c, _ := newMatrixCluster(t, 1, NodeOptions{}, false)
	if _, err := c.TaskStatus("x"); err == nil {
		t.Error("TaskStatus without ZHT succeeded")
	}
}

func TestWaitForCountTimeout(t *testing.T) {
	c, _ := newMatrixCluster(t, 1, NodeOptions{Workers: 1}, false)
	if c.WaitForCount(10, 20*time.Millisecond) {
		t.Error("WaitForCount reported success with no tasks")
	}
}

func TestPopBatchFraction(t *testing.T) {
	n := NewNode("a", []string{"a"}, nil, nil, NodeOptions{StealBatchFraction: 0.5})
	n.Enqueue(MakeSleepTasks(10, 0)...)
	batch := n.popBatch()
	if len(batch) != 5 {
		t.Errorf("stole %d of 10, want half", len(batch))
	}
	if n.QueueLen() != 5 {
		t.Errorf("victim retains %d", n.QueueLen())
	}
	// Single remaining task is not stealable down to zero... but a
	// queue of 1 yields nothing (fraction rounds to 0 and len==1).
	n2 := NewNode("b", []string{"b"}, nil, nil, NodeOptions{StealBatchFraction: 0.5})
	n2.Enqueue(MakeSleepTasks(1, 0)...)
	if got := n2.popBatch(); got != nil {
		t.Errorf("stole %d from a single-task queue", len(got))
	}
	// Two tasks: the rounding floor still takes one.
	n3 := NewNode("c", []string{"c"}, nil, nil, NodeOptions{StealBatchFraction: 0.4})
	n3.Enqueue(MakeSleepTasks(2, 0)...)
	if got := n3.popBatch(); len(got) != 1 {
		t.Errorf("stole %d of 2, want 1", len(got))
	}
}
