package matrix

import (
	"errors"
	"fmt"
	"time"

	"zht/internal/core"
	"zht/internal/transport"
	"zht/internal/wire"
)

// Cluster wires a set of MATRIX nodes over a transport, with an
// optional ZHT deployment tracking task state.
type Cluster struct {
	Nodes  []*Node
	caller transport.Caller
	zht    *core.Client
}

// NewCluster starts n nodes. zht may be nil to skip status tracking.
func NewCluster(n int, opts NodeOptions, zht *core.Client,
	listen func(addr string, h transport.Handler) (transport.Listener, error),
	caller transport.Caller) (*Cluster, error) {
	if n <= 0 {
		return nil, errors.New("matrix: need at least one node")
	}
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("matrix-%04d", i)
	}
	c := &Cluster{caller: caller, zht: zht}
	for i := 0; i < n; i++ {
		nd := NewNode(addrs[i], addrs, zht, caller, opts)
		if _, err := listen(addrs[i], nd.Handle); err != nil {
			return nil, err
		}
		c.Nodes = append(c.Nodes, nd)
	}
	for _, nd := range c.Nodes {
		nd.Start()
	}
	return c, nil
}

// Submit registers tasks in ZHT (status=queued) and enqueues them.
// mode "balanced" spreads tasks round-robin over all nodes; "single"
// sends everything to node 0 (the worst case that work stealing must
// fix — the paper's client "could submit tasks to arbitrary node, or
// to all the nodes in a balanced distribution").
func (c *Cluster) Submit(tasks []*Task, mode string) error {
	if c.zht != nil {
		for _, t := range tasks {
			if err := c.zht.Insert(statusKey(t.ID), statusValue(StatusQueued, "")); err != nil {
				return err
			}
		}
	}
	switch mode {
	case "balanced":
		per := (len(tasks) + len(c.Nodes) - 1) / len(c.Nodes)
		for i, nd := range c.Nodes {
			lo := i * per
			if lo >= len(tasks) {
				break
			}
			hi := lo + per
			if hi > len(tasks) {
				hi = len(tasks)
			}
			nd.Enqueue(tasks[lo:hi]...)
		}
	case "single":
		c.Nodes[0].Enqueue(tasks...)
	default:
		return fmt.Errorf("matrix: unknown submit mode %q", mode)
	}
	return nil
}

// SubmitRemote sends a task batch to a node by address through the
// wire protocol (what an external client does).
func (c *Cluster) SubmitRemote(addr string, tasks []*Task) error {
	resp, err := c.caller.Call(addr, &wire.Request{
		Op: wire.OpInsert, Key: keySubmit, Value: encodeTaskList(tasks),
	})
	if err != nil {
		return err
	}
	if resp.Status != wire.StatusOK {
		return fmt.Errorf("matrix: submit: %s", resp.Err)
	}
	return nil
}

// TotalExecuted sums completed tasks across nodes.
func (c *Cluster) TotalExecuted() int64 {
	var n int64
	for _, nd := range c.Nodes {
		n += nd.Executed()
	}
	return n
}

// WaitForCount blocks until total executed tasks reaches want or the
// timeout passes; it reports whether the target was reached.
func (c *Cluster) WaitForCount(want int64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c.TotalExecuted() >= want {
			return true
		}
		time.Sleep(200 * time.Microsecond)
	}
	return c.TotalExecuted() >= want
}

// TaskStatus reads a task's ZHT status record.
func (c *Cluster) TaskStatus(id string) (string, error) {
	if c.zht == nil {
		return "", errors.New("matrix: cluster has no ZHT client")
	}
	v, err := c.zht.Lookup(statusKey(id))
	if err != nil {
		return "", err
	}
	return string(v), nil
}

// Stop halts every node.
func (c *Cluster) Stop() {
	for _, nd := range c.Nodes {
		nd.Stop()
	}
}

// RunWorkload drives a complete workload to completion and reports
// the makespan and efficiency: efficiency = (total task compute time
// / workers) / makespan — the metric of Figure 19.
func (c *Cluster) RunWorkload(tasks []*Task, mode string, timeout time.Duration) (makespan time.Duration, efficiency float64, err error) {
	start := time.Now()
	if err := c.Submit(tasks, mode); err != nil {
		return 0, 0, err
	}
	if !c.WaitForCount(int64(len(tasks)), timeout) {
		return 0, 0, fmt.Errorf("matrix: workload timed out: %d/%d done", c.TotalExecuted(), len(tasks))
	}
	makespan = time.Since(start)
	var totalWork time.Duration
	for _, t := range tasks {
		totalWork += t.Duration
	}
	workers := 0
	for _, nd := range c.Nodes {
		workers += nd.opts.Workers
	}
	ideal := totalWork / time.Duration(workers)
	if makespan > 0 {
		efficiency = float64(ideal) / float64(makespan)
	}
	return makespan, efficiency, nil
}

// MakeSleepTasks builds the paper's synthetic workload: count tasks
// of the given duration.
func MakeSleepTasks(count int, d time.Duration) []*Task {
	ts := make([]*Task, count)
	for i := range ts {
		ts[i] = &Task{ID: fmt.Sprintf("task-%07d", i), Duration: d}
	}
	return ts
}
