// Package matrix implements MATRIX, the distributed many-task
// computing execution framework built on ZHT (paper §V.C, Figures 18
// and 19).
//
// MATRIX "utilizes the adaptive work stealing algorithm to achieve
// distributed load balancing, and ZHT to submit tasks and monitor the
// task execution progress": every compute node runs an executor with
// a local task queue; idle executors steal batches of tasks from
// randomly probed peers with an adaptive backoff; task submission and
// completion status live in ZHT, so any client can submit to an
// arbitrary node and observe progress with plain lookups.
package matrix

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Task is one unit of work: MATRIX's evaluation uses sleep tasks of
// configurable duration (0–8 s in the paper).
type Task struct {
	ID       string
	Duration time.Duration // simulated compute time
	Payload  []byte        // opaque application data
}

var errBadTask = errors.New("matrix: malformed task encoding")

// encodeTask serializes a task.
func encodeTask(t *Task) []byte {
	buf := []byte{'T', '1'}
	buf = binary.AppendUvarint(buf, uint64(len(t.ID)))
	buf = append(buf, t.ID...)
	buf = binary.AppendVarint(buf, int64(t.Duration))
	buf = binary.AppendUvarint(buf, uint64(len(t.Payload)))
	buf = append(buf, t.Payload...)
	return buf
}

func decodeTask(b []byte) (*Task, error) {
	if len(b) < 2 || b[0] != 'T' || b[1] != '1' {
		return nil, errBadTask
	}
	b = b[2:]
	n, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b[sz:])) < n {
		return nil, errBadTask
	}
	t := &Task{ID: string(b[sz : sz+int(n)])}
	b = b[sz+int(n):]
	d, sz2 := binary.Varint(b)
	if sz2 <= 0 {
		return nil, errBadTask
	}
	t.Duration = time.Duration(d)
	b = b[sz2:]
	pn, sz3 := binary.Uvarint(b)
	if sz3 <= 0 || uint64(len(b[sz3:])) < pn {
		return nil, errBadTask
	}
	if pn > 0 {
		t.Payload = append([]byte(nil), b[sz3:sz3+int(pn)]...)
	}
	b = b[sz3+int(pn):]
	if len(b) != 0 {
		return nil, errBadTask
	}
	return t, nil
}

// encodeTaskList frames a batch of tasks (steal responses, submit
// batches).
func encodeTaskList(ts []*Task) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(ts)))
	for _, t := range ts {
		e := encodeTask(t)
		buf = binary.AppendUvarint(buf, uint64(len(e)))
		buf = append(buf, e...)
	}
	return buf
}

func decodeTaskList(b []byte) ([]*Task, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > 1<<24 {
		return nil, errBadTask
	}
	b = b[sz:]
	out := make([]*Task, 0, n)
	for i := uint64(0); i < n; i++ {
		l, sz2 := binary.Uvarint(b)
		if sz2 <= 0 || uint64(len(b[sz2:])) < l {
			return nil, errBadTask
		}
		t, err := decodeTask(b[sz2 : sz2+int(l)])
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		b = b[sz2+int(l):]
	}
	if len(b) != 0 {
		return nil, errBadTask
	}
	return out, nil
}

// EncodeTaskForWire exposes the task codec to sibling packages (the
// Falkon baseline shares the task type).
func EncodeTaskForWire(t *Task) []byte { return encodeTask(t) }

// DecodeTaskFromWire is the inverse of EncodeTaskForWire.
func DecodeTaskFromWire(b []byte) (*Task, error) { return decodeTask(b) }

// Status values stored in ZHT under "mtask:<id>".
const (
	StatusQueued = "queued"
	StatusDone   = "done"
)

func statusKey(id string) string { return "mtask:" + id }

// statusValue records where the task ran.
func statusValue(status, node string) []byte {
	return []byte(fmt.Sprintf("%s@%s", status, node))
}
