package matrix

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"zht/internal/core"
	"zht/internal/transport"
	"zht/internal/wire"
)

// Steal protocol keys: node-to-node requests travel over the same
// transport layer as ZHT but to the scheduler's own addresses, using
// OpLookup with these reserved keys.
const (
	keySteal  = "matrix/steal"  // response: half the victim's queue
	keySubmit = "matrix/submit" // request Value: task list to enqueue
	keyLoad   = "matrix/load"   // response: queue length (monitoring)
)

// NodeOptions configures one MATRIX scheduler node.
type NodeOptions struct {
	// Workers is the number of executor goroutines (cores).
	Workers int
	// StealBatchFraction is how much of a victim's queue a thief
	// takes (the adaptive work stealing algorithm steals half).
	StealBatchFraction float64
	// PollMin/PollMax bound the adaptive steal backoff.
	PollMin, PollMax time.Duration
	// SimulatedTime makes executors account task durations without
	// sleeping (virtual execution for large benchmarks). Wall-clock
	// efficiency measurements should keep it false.
	SimulatedTime bool
}

func (o *NodeOptions) fill() {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.StealBatchFraction <= 0 || o.StealBatchFraction > 1 {
		o.StealBatchFraction = 0.5
	}
	if o.PollMin <= 0 {
		o.PollMin = 100 * time.Microsecond
	}
	if o.PollMax <= 0 {
		o.PollMax = 50 * time.Millisecond
	}
}

// Node is one MATRIX scheduler/executor.
type Node struct {
	addr   string
	peers  []string // all node addresses (self included)
	opts   NodeOptions
	zht    *core.Client
	caller transport.Caller

	mu    sync.Mutex
	queue []*Task

	executed  atomic.Int64
	stolen    atomic.Int64
	busyNanos atomic.Int64

	stop chan struct{}
	wg   sync.WaitGroup
	rng  *rand.Rand
	rmu  sync.Mutex
}

// NewNode creates a scheduler node. zht may be nil when status
// tracking is not needed (micro-benchmarks).
func NewNode(addr string, peers []string, zht *core.Client, caller transport.Caller, opts NodeOptions) *Node {
	opts.fill()
	return &Node{
		addr: addr, peers: peers, opts: opts, zht: zht, caller: caller,
		stop: make(chan struct{}),
		rng:  rand.New(rand.NewSource(int64(len(addr)) + time.Now().UnixNano())),
	}
}

// Handle implements transport.Handler for the steal protocol.
func (n *Node) Handle(req *wire.Request) *wire.Response {
	switch {
	case req.Op == wire.OpLookup && req.Key == keySteal:
		batch := n.popBatch()
		if len(batch) == 0 {
			return &wire.Response{Status: wire.StatusNotFound}
		}
		n.stolen.Add(int64(len(batch)))
		return &wire.Response{Status: wire.StatusOK, Value: encodeTaskList(batch)}
	case req.Op == wire.OpInsert && req.Key == keySubmit:
		ts, err := decodeTaskList(req.Value)
		if err != nil {
			return &wire.Response{Status: wire.StatusError, Err: err.Error()}
		}
		n.Enqueue(ts...)
		return &wire.Response{Status: wire.StatusOK}
	case req.Op == wire.OpLookup && req.Key == keyLoad:
		n.mu.Lock()
		l := len(n.queue)
		n.mu.Unlock()
		return &wire.Response{Status: wire.StatusOK, Value: []byte{byte(l), byte(l >> 8), byte(l >> 16), byte(l >> 24)}}
	case req.Op == wire.OpPing:
		return &wire.Response{Status: wire.StatusOK}
	}
	return &wire.Response{Status: wire.StatusError, Err: "matrix: unsupported request"}
}

// Enqueue adds tasks to the local queue.
func (n *Node) Enqueue(ts ...*Task) {
	n.mu.Lock()
	n.queue = append(n.queue, ts...)
	n.mu.Unlock()
}

// popOne takes one task from the back (LIFO locally: better cache
// behaviour; thieves take from the front).
func (n *Node) popOne() *Task {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.queue) == 0 {
		return nil
	}
	t := n.queue[len(n.queue)-1]
	n.queue = n.queue[:len(n.queue)-1]
	return t
}

// popBatch removes the configured fraction of the queue front for a
// thief.
func (n *Node) popBatch() []*Task {
	n.mu.Lock()
	defer n.mu.Unlock()
	take := int(float64(len(n.queue)) * n.opts.StealBatchFraction)
	if take == 0 && len(n.queue) > 1 {
		take = 1
	}
	if take == 0 {
		return nil
	}
	batch := append([]*Task(nil), n.queue[:take]...)
	n.queue = append(n.queue[:0], n.queue[take:]...)
	return batch
}

// QueueLen reports the local queue length.
func (n *Node) QueueLen() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.queue)
}

// Executed reports tasks completed by this node.
func (n *Node) Executed() int64 { return n.executed.Load() }

// Stolen reports tasks taken from this node by thieves.
func (n *Node) Stolen() int64 { return n.stolen.Load() }

// BusyTime reports cumulative task execution time.
func (n *Node) BusyTime() time.Duration { return time.Duration(n.busyNanos.Load()) }

// Start launches the executor workers.
func (n *Node) Start() {
	for w := 0; w < n.opts.Workers; w++ {
		n.wg.Add(1)
		go n.worker()
	}
}

// Stop halts the executors after their current task.
func (n *Node) Stop() {
	select {
	case <-n.stop:
	default:
		close(n.stop)
	}
	n.wg.Wait()
}

func (n *Node) worker() {
	defer n.wg.Done()
	backoff := n.opts.PollMin
	for {
		select {
		case <-n.stop:
			return
		default:
		}
		t := n.popOne()
		if t == nil {
			if n.trySteal() {
				backoff = n.opts.PollMin // adaptive: reset on success
				continue
			}
			// Adaptive backoff: double the probe interval while the
			// neighbourhood is dry.
			select {
			case <-n.stop:
				return
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > n.opts.PollMax {
				backoff = n.opts.PollMax
			}
			continue
		}
		n.execute(t)
	}
}

func (n *Node) execute(t *Task) {
	if t.Duration > 0 {
		if n.opts.SimulatedTime {
			// Account without sleeping.
		} else {
			time.Sleep(t.Duration)
		}
	}
	n.busyNanos.Add(int64(t.Duration))
	n.executed.Add(1)
	if n.zht != nil {
		n.zht.Insert(statusKey(t.ID), statusValue(StatusDone, n.addr))
	}
}

// trySteal probes one random peer and absorbs its batch.
func (n *Node) trySteal() bool {
	if len(n.peers) <= 1 {
		return false
	}
	n.rmu.Lock()
	victim := n.peers[n.rng.Intn(len(n.peers))]
	n.rmu.Unlock()
	if victim == n.addr {
		return false
	}
	resp, err := n.caller.Call(victim, &wire.Request{Op: wire.OpLookup, Key: keySteal})
	if err != nil || resp.Status != wire.StatusOK {
		return false
	}
	ts, err := decodeTaskList(resp.Value)
	if err != nil || len(ts) == 0 {
		return false
	}
	n.Enqueue(ts...)
	return true
}
