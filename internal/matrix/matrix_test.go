package matrix

import (
	"reflect"
	"testing"
	"time"

	"zht/internal/core"
	"zht/internal/transport"
	"zht/internal/wire"
)

func TestTaskCodecRoundTrip(t *testing.T) {
	cases := []*Task{
		{ID: "task-1", Duration: time.Second, Payload: []byte("args")},
		{ID: "", Duration: 0},
		{ID: "x", Duration: 8 * time.Second},
	}
	for i, task := range cases {
		got, err := decodeTask(encodeTask(task))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(task, got) {
			t.Errorf("case %d:\n got %+v\nwant %+v", i, got, task)
		}
	}
	for _, b := range [][]byte{nil, {}, []byte("X1"), []byte("T1")} {
		if _, err := decodeTask(b); err == nil {
			t.Errorf("garbage %q accepted", b)
		}
	}
}

func TestTaskListCodec(t *testing.T) {
	ts := MakeSleepTasks(17, 3*time.Millisecond)
	got, err := decodeTaskList(encodeTaskList(ts))
	if err != nil || len(got) != 17 {
		t.Fatalf("list round trip: %d %v", len(got), err)
	}
	if got[5].ID != ts[5].ID || got[5].Duration != ts[5].Duration {
		t.Error("list entries corrupted")
	}
	empty, err := decodeTaskList(encodeTaskList(nil))
	if err != nil || len(empty) != 0 {
		t.Errorf("empty list: %v %v", empty, err)
	}
	if _, err := decodeTaskList([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}); err == nil {
		t.Error("absurd count accepted")
	}
}

func newMatrixCluster(t *testing.T, n int, opts NodeOptions, withZHT bool) (*Cluster, *transport.Registry) {
	t.Helper()
	reg := transport.NewRegistry()
	var zc *core.Client
	if withZHT {
		d, zreg, err := core.BootstrapInproc(core.Config{NumPartitions: 64, RetryBase: time.Millisecond}, 2)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		_ = zreg
		if zc, err = d.NewClient(); err != nil {
			t.Fatal(err)
		}
	}
	c, err := NewCluster(n, opts, zc, func(addr string, h transport.Handler) (transport.Listener, error) {
		return reg.Listen(addr, h)
	}, reg.NewClient())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c, reg
}

func TestBalancedWorkloadCompletes(t *testing.T) {
	c, _ := newMatrixCluster(t, 4, NodeOptions{Workers: 2}, false)
	tasks := MakeSleepTasks(400, 0)
	if err := c.Submit(tasks, "balanced"); err != nil {
		t.Fatal(err)
	}
	if !c.WaitForCount(400, 5*time.Second) {
		t.Fatalf("only %d/400 completed", c.TotalExecuted())
	}
}

// TestWorkStealingBalancesSingleNodeSubmit submits everything to node
// 0 and requires the other nodes to steal a meaningful share.
func TestWorkStealingBalancesSingleNodeSubmit(t *testing.T) {
	c, _ := newMatrixCluster(t, 4, NodeOptions{Workers: 1}, false)
	tasks := MakeSleepTasks(800, 500*time.Microsecond)
	if err := c.Submit(tasks, "single"); err != nil {
		t.Fatal(err)
	}
	if !c.WaitForCount(800, 30*time.Second) {
		t.Fatalf("only %d/800 completed", c.TotalExecuted())
	}
	for i, nd := range c.Nodes {
		if ex := nd.Executed(); ex < 40 {
			t.Errorf("node %d executed only %d/800 tasks; stealing ineffective", i, ex)
		}
	}
	if c.Nodes[0].Stolen() == 0 {
		t.Error("nothing was stolen from the submit target")
	}
}

func TestRemoteSubmit(t *testing.T) {
	c, _ := newMatrixCluster(t, 2, NodeOptions{Workers: 1}, false)
	if err := c.SubmitRemote("matrix-0001", MakeSleepTasks(50, 0)); err != nil {
		t.Fatal(err)
	}
	if !c.WaitForCount(50, 5*time.Second) {
		t.Fatalf("remote submit: %d/50 done", c.TotalExecuted())
	}
}

func TestTaskStatusInZHT(t *testing.T) {
	c, _ := newMatrixCluster(t, 2, NodeOptions{Workers: 1}, true)
	tasks := MakeSleepTasks(20, 0)
	if err := c.Submit(tasks, "balanced"); err != nil {
		t.Fatal(err)
	}
	if !c.WaitForCount(20, 5*time.Second) {
		t.Fatal("workload incomplete")
	}
	// Every task's ZHT record must eventually read done@node.
	deadline := time.Now().Add(5 * time.Second)
	for _, task := range tasks {
		for {
			s, err := c.TaskStatus(task.ID)
			if err == nil && len(s) > 5 && s[:4] == "done" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("task %s status = %q %v", task.ID, s, err)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

func TestRunWorkloadEfficiency(t *testing.T) {
	c, _ := newMatrixCluster(t, 4, NodeOptions{Workers: 2}, false)
	tasks := MakeSleepTasks(160, 5*time.Millisecond)
	makespan, eff, err := c.RunWorkload(tasks, "balanced", 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if makespan <= 0 {
		t.Error("zero makespan")
	}
	// 160 × 5 ms over 8 workers = 100 ms ideal; distributed queues
	// should stay well above 60% efficiency (the paper's MATRIX
	// reaches 92–97%).
	if eff < 0.6 || eff > 1.05 {
		t.Errorf("efficiency = %.2f, want 0.6–1.0", eff)
	}
}

func TestNodeHandleRejectsUnknown(t *testing.T) {
	c, _ := newMatrixCluster(t, 1, NodeOptions{}, false)
	resp := c.Nodes[0].Handle(&wire.Request{Op: wire.OpAppend, Key: "whatever"})
	if resp.Status != wire.StatusError {
		t.Errorf("unknown request accepted: %v", resp.Status)
	}
}

func TestStopIdempotent(t *testing.T) {
	c, _ := newMatrixCluster(t, 2, NodeOptions{Workers: 1}, false)
	c.Stop()
	c.Stop()
}

func TestBadSubmitMode(t *testing.T) {
	c, _ := newMatrixCluster(t, 1, NodeOptions{}, false)
	if err := c.Submit(MakeSleepTasks(1, 0), "chaotic"); err == nil {
		t.Error("bad mode accepted")
	}
}
