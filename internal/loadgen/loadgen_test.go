package loadgen

import (
	"strings"
	"testing"
)

func TestReproducible(t *testing.T) {
	mk := func() []Op {
		g, err := New(Options{Mix: PaperMicrobench(), Dist: Uniform{Keys: 1000}, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return g.Stream(500)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Key != b[i].Key {
			t.Fatalf("stream diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestMixProportions(t *testing.T) {
	g, err := New(Options{Mix: Mix{Insert: 3, Lookup: 1}, Dist: Uniform{Keys: 100}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[OpKind]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		counts[g.Next().Kind]++
	}
	insFrac := float64(counts[OpInsert]) / n
	if insFrac < 0.70 || insFrac > 0.80 {
		t.Errorf("insert fraction = %.2f, want ≈0.75", insFrac)
	}
	if counts[OpRemove] != 0 || counts[OpAppend] != 0 {
		t.Errorf("zero-weight kinds appeared: %v", counts)
	}
}

func TestValuesOnlyForMutations(t *testing.T) {
	g, _ := New(Options{Mix: PaperMicrobench(), Dist: Uniform{Keys: 10}, Seed: 2})
	for i := 0; i < 200; i++ {
		op := g.Next()
		switch op.Kind {
		case OpInsert, OpAppend:
			if len(op.Value) != 132 {
				t.Fatalf("%v carries %d-byte value, want 132 (paper default)", op.Kind, len(op.Value))
			}
		default:
			if op.Value != nil {
				t.Fatalf("%v carries a value", op.Kind)
			}
		}
	}
}

func TestKeyPrefixAndValueLen(t *testing.T) {
	g, _ := New(Options{Mix: Mix{Insert: 1}, Dist: Uniform{Keys: 5}, KeyPrefix: "c7/", ValueLen: 64})
	op := g.Next()
	if !strings.HasPrefix(op.Key, "c7/") {
		t.Errorf("key %q missing prefix", op.Key)
	}
	if len(op.Value) != 64 {
		t.Errorf("value len %d", len(op.Value))
	}
}

func TestZipfSkew(t *testing.T) {
	g, err := New(Options{Mix: Mix{Lookup: 1}, Dist: Zipf{Keys: 10000, S: 1.5}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ops := g.Stream(20000)
	hot := HotKeyFraction(ops, 10)
	want := TheoreticalZipfMass(10000, 10, 1.5)
	if hot < want*0.5 {
		t.Errorf("top-10 keys draw %.2f of traffic, theory says ≈%.2f", hot, want)
	}
	// Uniform traffic must NOT be skewed like that.
	gu, _ := New(Options{Mix: Mix{Lookup: 1}, Dist: Uniform{Keys: 10000}, Seed: 3})
	uniHot := HotKeyFraction(gu.Stream(20000), 10)
	if uniHot > hot/3 {
		t.Errorf("uniform top-10 fraction %.3f too close to zipf %.3f", uniHot, hot)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Options{Mix: PaperMicrobench()}); err == nil {
		t.Error("missing distribution accepted")
	}
	if _, err := New(Options{Dist: Uniform{Keys: 10}}); err == nil {
		t.Error("empty mix accepted")
	}
	if _, err := New(Options{Mix: PaperMicrobench(), Dist: Uniform{Keys: 0}}); err == nil {
		t.Error("empty keyspace accepted")
	}
}

func TestOpKindStrings(t *testing.T) {
	for _, k := range []OpKind{OpInsert, OpLookup, OpRemove, OpAppend} {
		if k.String() == "" || strings.HasPrefix(k.String(), "op(") {
			t.Errorf("kind %d has no name", k)
		}
	}
}
