// Package loadgen generates the key/value workloads the benchmark
// harness drives at ZHT (deliverable: workload generators for the
// evaluation).
//
// The paper's micro-benchmark uses uniformly random 15-byte keys and
// 132-byte values in an insert→lookup→remove sequence (§IV.A);
// FusionFS-style metadata traffic instead concentrates appends on hot
// directory keys. This package provides both access patterns —
// uniform and Zipfian — plus configurable op mixes, so benches can
// explore the space between them.
package loadgen

import (
	"fmt"
	"math"
	"math/rand"
)

// OpKind is one operation type in a mix.
type OpKind int

// Operation kinds.
const (
	OpInsert OpKind = iota
	OpLookup
	OpRemove
	OpAppend
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpLookup:
		return "lookup"
	case OpRemove:
		return "remove"
	case OpAppend:
		return "append"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Mix is a weighted operation mix; weights need not sum to 1.
type Mix struct {
	Insert, Lookup, Remove, Append float64
}

// PaperMicrobench is the §IV.A sequence expressed as a mix: equal
// parts insert, lookup, remove.
func PaperMicrobench() Mix { return Mix{Insert: 1, Lookup: 1, Remove: 1} }

// MetadataHeavy approximates FusionFS metadata traffic: many creates
// (insert+append) with frequent stats.
func MetadataHeavy() Mix { return Mix{Insert: 2, Lookup: 5, Append: 2, Remove: 1} }

// pick selects a kind according to the weights.
func (m Mix) pick(rng *rand.Rand) OpKind {
	total := m.Insert + m.Lookup + m.Remove + m.Append
	x := rng.Float64() * total
	switch {
	case x < m.Insert:
		return OpInsert
	case x < m.Insert+m.Lookup:
		return OpLookup
	case x < m.Insert+m.Lookup+m.Remove:
		return OpRemove
	default:
		return OpAppend
	}
}

// KeyDist selects which key an operation touches.
type KeyDist interface {
	// Next returns a key index in [0, n).
	Next(rng *rand.Rand) int
	// N is the keyspace size.
	N() int
}

// Uniform is the paper's random-key distribution.
type Uniform struct{ Keys int }

// Next implements KeyDist.
func (u Uniform) Next(rng *rand.Rand) int { return rng.Intn(u.Keys) }

// N implements KeyDist.
func (u Uniform) N() int { return u.Keys }

// Zipf concentrates traffic on a few hot keys (rank-skewed with
// exponent S > 1), the regime where append's lock-free concurrent
// modification matters most.
type Zipf struct {
	Keys int
	S    float64 // skew exponent, > 1
}

// N implements KeyDist.
func (z Zipf) N() int { return z.Keys }

// Next implements KeyDist. Each call derives its variate from the
// shared rng; the Zipf generator itself is stateless across calls.
func (z Zipf) Next(rng *rand.Rand) int {
	s := z.S
	if s <= 1 {
		s = 1.1
	}
	zg := rand.NewZipf(rng, s, 1, uint64(z.Keys-1))
	if zg == nil {
		return 0
	}
	return int(zg.Uint64())
}

// Op is one generated operation.
type Op struct {
	Kind  OpKind
	Key   string
	Value []byte
}

// Generator produces a reproducible operation stream.
type Generator struct {
	mix    Mix
	dist   KeyDist
	rng    *rand.Rand
	prefix string
	value  []byte
}

// Options configures a Generator.
type Options struct {
	Mix  Mix
	Dist KeyDist
	Seed int64
	// KeyPrefix namespaces the generated keys (e.g. per client).
	KeyPrefix string
	// ValueLen is the value size; 0 means the paper's 132 bytes.
	ValueLen int
}

// New creates a generator.
func New(o Options) (*Generator, error) {
	if o.Dist == nil || o.Dist.N() <= 0 {
		return nil, fmt.Errorf("loadgen: key distribution with positive keyspace required")
	}
	if o.Mix.Insert+o.Mix.Lookup+o.Mix.Remove+o.Mix.Append <= 0 {
		return nil, fmt.Errorf("loadgen: empty op mix")
	}
	vl := o.ValueLen
	if vl == 0 {
		vl = 132
	}
	val := make([]byte, vl)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	return &Generator{
		mix:    o.Mix,
		dist:   o.Dist,
		rng:    rand.New(rand.NewSource(o.Seed)),
		prefix: o.KeyPrefix,
		value:  val,
	}, nil
}

// Next returns the next operation in the stream.
func (g *Generator) Next() Op {
	kind := g.mix.pick(g.rng)
	key := fmt.Sprintf("%sk%09d", g.prefix, g.dist.Next(g.rng))
	op := Op{Kind: kind, Key: key}
	if kind == OpInsert || kind == OpAppend {
		op.Value = g.value
	}
	return op
}

// Stream returns n operations.
func (g *Generator) Stream(n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = g.Next()
	}
	return ops
}

// HotKeyFraction reports the fraction of ops in the stream touching
// the top-k most popular keys — a skew diagnostic for tests.
func HotKeyFraction(ops []Op, topK int) float64 {
	counts := map[string]int{}
	for _, op := range ops {
		counts[op.Key]++
	}
	// Select the topK counts.
	var all []int
	for _, c := range counts {
		all = append(all, c)
	}
	// Partial selection via simple sort (streams are small).
	sortDesc(all)
	if topK > len(all) {
		topK = len(all)
	}
	hot := 0
	for i := 0; i < topK; i++ {
		hot += all[i]
	}
	return float64(hot) / float64(len(ops))
}

func sortDesc(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] > xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// TheoreticalZipfMass returns the expected probability mass of the
// top-k ranks for exponent s over n keys (used to sanity-check the
// generator in tests).
func TheoreticalZipfMass(n, k int, s float64) float64 {
	var total, top float64
	for r := 1; r <= n; r++ {
		p := 1 / math.Pow(float64(r), s)
		total += p
		if r <= k {
			top += p
		}
	}
	return top / total
}
