// Package zht is a from-scratch Go implementation of ZHT, the
// light-weight reliable persistent dynamic scalable zero-hop
// distributed hash table for high-end computing (Li et al.,
// IPDPS 2013).
//
// ZHT routes every operation directly to the instance owning the
// key's partition — zero hops — using a complete membership table
// held by every client and server. The table refreshes lazily when
// membership changes. Partitions persist via NoVoHT, a log-structured
// persistent hash table, and replicate to ring neighbours for fault
// tolerance. Four basic operations are provided — Insert, Lookup,
// Remove, and Append (lock-free concurrent modification) — plus Cas
// and a spanning-tree Broadcast extension.
//
// # Quick start
//
//	cfg := zht.Config{NumPartitions: 1024, Replicas: 2}
//	d, _, err := zht.BootstrapInproc(cfg, 4) // 4 in-process instances
//	if err != nil { ... }
//	defer d.Close()
//	c, err := d.NewClient()
//	if err != nil { ... }
//	c.Insert("/dir/file", meta)
//	v, err := c.Lookup("/dir/file")
//
// For a networked deployment, bind instances with zht.ListenTCP (or
// ListenUDP) endpoints via zht.Bootstrap, and create remote clients
// with zht.NewClientFromSeed. See examples/ and cmd/ for complete
// programs.
package zht

import (
	"zht/internal/core"
	"zht/internal/ring"
	"zht/internal/transport"
	"zht/internal/wire"
)

// Config holds deployment-wide ZHT parameters. See core.Config for
// field documentation.
type Config = core.Config

// Client is a ZHT client handle; safe for concurrent use.
type Client = core.Client

// Instance is one running ZHT server.
type Instance = core.Instance

// Deployment manages a group of instances (bootstrap, join, depart).
type Deployment = core.Deployment

// Endpoint names where an instance should live.
type Endpoint = core.Endpoint

// HandlerSwitch allows binding a transport address before its
// instance exists (needed for dynamic joins).
type HandlerSwitch = core.HandlerSwitch

// Table is the ZHT membership table.
type Table = ring.Table

// Consistency selects how many replicas a read or write waits on.
// Set deployment defaults with Config.WriteLevel / Config.ReadLevel,
// or override per operation via the client's *With methods
// (InsertWith, LookupWith, ...).
type Consistency = wire.Consistency

// Consistency levels. Default resolves to the deployment's configured
// level (QUORUM for writes, ONE for reads).
const (
	ConsistencyDefault = wire.ConsistencyDefault
	ConsistencyOne     = wire.ConsistencyOne
	ConsistencyQuorum  = wire.ConsistencyQuorum
	ConsistencyAll     = wire.ConsistencyAll
)

// Errors returned by client operations.
var (
	ErrNotFound    = core.ErrNotFound
	ErrExists      = core.ErrExists
	ErrCasMismatch = core.ErrCasMismatch
	ErrUnavailable = core.ErrUnavailable
	ErrTooLarge    = core.ErrTooLarge
)

// Bootstrap starts one instance per endpoint on the given transport.
func Bootstrap(cfg Config, eps []Endpoint, listen core.ListenFunc, caller transport.Caller) (*Deployment, error) {
	return core.Bootstrap(cfg, eps, listen, caller)
}

// BootstrapInproc starts n instances on a fresh in-process transport —
// the fastest way to run ZHT inside one OS process (tests, examples,
// benchmarks).
func BootstrapInproc(cfg Config, n int) (*Deployment, *transport.Registry, error) {
	return core.BootstrapInproc(cfg, n)
}

// NewClient builds a client from a known membership table.
func NewClient(cfg Config, table *Table, caller transport.Caller) (*Client, error) {
	return core.NewClient(cfg, table, caller)
}

// NewClientFromSeed builds a client by fetching the membership table
// from any live instance.
func NewClientFromSeed(cfg Config, seedAddr string, caller transport.Caller) (*Client, error) {
	return core.NewClientFromSeed(cfg, seedAddr, caller)
}

// NewTCPCaller returns a TCP transport caller with the connection
// cache enabled (the paper's fastest TCP configuration).
func NewTCPCaller() transport.Caller {
	return transport.NewTCPClient(transport.TCPClientOptions{ConnCache: true})
}

// NewUDPCaller returns an acknowledge-based UDP transport caller.
func NewUDPCaller() transport.Caller {
	return transport.NewUDPClient(transport.UDPClientOptions{})
}

// ListenTCP binds a ZHT handler to a TCP address; pass the result of
// instance.Handle (or a HandlerSwitch).
func ListenTCP(addr string, h transport.Handler) (transport.Listener, error) {
	return transport.ListenTCP(addr, h, transport.EventDriven)
}

// ListenUDP binds a ZHT handler to a UDP address.
func ListenUDP(addr string, h transport.Handler) (transport.Listener, error) {
	return transport.ListenUDP(addr, h)
}
