package main

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"zht/internal/metrics"
)

// adhocQuantile is the benchmark's old percentile math: sort the raw
// samples and index the rank directly. The registry histograms
// replaced it; this test pins the two against each other.
func adhocQuantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// TestRegistryMatchesAdhocPercentiles drives one latency distribution
// through both the exact sorted-sample math zht-bench used to print
// and the registry histogram it prints now, and requires every
// reported quantile to agree within the histogram's bucket error
// (1/32 relative, doubled for rank-rounding slack at the tails).
func TestRegistryMatchesAdhocPercentiles(t *testing.T) {
	reg := metrics.NewRegistry()
	h := reg.Histogram("zht.client.op.all.latency_ns")
	rng := rand.New(rand.NewSource(7))
	samples := make([]int64, 0, 100000)
	for i := 0; i < 100000; i++ {
		// Log-normal-ish latencies centered near 50µs, like a real
		// inproc bench run.
		v := int64(50e3 * math.Exp(rng.NormFloat64()*0.8))
		if v < 1 {
			v = 1
		}
		samples = append(samples, v)
		h.Observe(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })

	snap := h.Snapshot()
	if snap.Count != int64(len(samples)) {
		t.Fatalf("count = %d, want %d", snap.Count, len(samples))
	}
	var sum int64
	for _, v := range samples {
		sum += v
	}
	exactMean := float64(sum) / float64(len(samples))
	if math.Abs(snap.Mean-exactMean)/exactMean > 1e-9 {
		t.Errorf("mean = %f, want exact %f", snap.Mean, exactMean)
	}
	for _, tc := range []struct {
		name  string
		q     float64
		reg   int64
		adhoc int64
	}{
		{"p50", 0.50, snap.P50, adhocQuantile(samples, 0.50)},
		{"p90", 0.90, snap.P90, adhocQuantile(samples, 0.90)},
		{"p99", 0.99, snap.P99, adhocQuantile(samples, 0.99)},
		{"p999", 0.999, snap.P999, adhocQuantile(samples, 0.999)},
	} {
		rel := math.Abs(float64(tc.reg)-float64(tc.adhoc)) / float64(tc.adhoc)
		if rel > 2.0/32 {
			t.Errorf("%s: registry %d vs ad-hoc %d (rel err %.4f > %.4f)",
				tc.name, tc.reg, tc.adhoc, rel, 2.0/32)
		}
	}
	exactMax := samples[len(samples)-1]
	if rel := math.Abs(float64(snap.Max)-float64(exactMax)) / float64(exactMax); rel > 1.0/32 {
		t.Errorf("max = %d, want %d within bucket error (rel err %.4f)", snap.Max, exactMax, rel)
	}
}

// TestFmtNs pins the unit thresholds the bench output uses.
func TestFmtNs(t *testing.T) {
	for _, tc := range []struct {
		ns   int64
		want string
	}{
		{999, "999ns"},
		{1500, "1.5µs"},
		{2500000, "2.50ms"},
		{3200000000, "3.20s"},
	} {
		if got := fmtNs(tc.ns); got != tc.want {
			t.Errorf("fmtNs(%d) = %q, want %q", tc.ns, got, tc.want)
		}
	}
}

// TestPrintRegistryMetricsOutput spot-checks the rendered form: a
// histogram line with all five summary stats and the counter lines
// beneath it.
func TestPrintRegistryMetricsOutput(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("zht.client.ops").Add(3)
	reg.Histogram("zht.client.op.all.latency_ns").Observe(1000)

	var sb strings.Builder
	s := reg.Snapshot()
	if err := s.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"zht.client.ops 3", "zht.client.op.all.latency_ns count=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot text missing %q:\n%s", want, out)
		}
	}
}
