// Command zht-bench runs the paper's micro-benchmark (§IV.A: 15-byte
// keys, 132-byte values, all-to-all insert/lookup/remove with 1:1
// clients and servers) against an in-process deployment.
//
//	zht-bench -nodes 16 -ops 2000 -replicas 2
//	zht-bench -nodes 4 -transport tcp-cache   # real loopback TCP
//	zht-bench -transport tcp-cache -batch 64  # batched envelopes
//	zht-bench -smoke                          # lockstep vs batch ratio check
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"zht/internal/chaos"
	"zht/internal/core"
	"zht/internal/hashing"
	"zht/internal/loadgen"
	"zht/internal/metrics"
	"zht/internal/ring"
	"zht/internal/storage"
	"zht/internal/tenant"
	"zht/internal/transport"
	"zht/internal/wire"
)

func main() {
	var (
		nodes      = flag.Int("nodes", 8, "instances (and concurrent clients)")
		ops        = flag.Int("ops", 2000, "insert+lookup+remove rounds per client")
		partitions = flag.Int("partitions", 1024, "partition count")
		replicas   = flag.Int("replicas", 0, "replicas per partition")
		trans      = flag.String("transport", "inproc", "inproc, tcp-cache, tcp-nocache, udp")
		dataDir    = flag.String("data", "", "persist partitions under this directory")
		mix        = flag.String("mix", "paper", "op mix: paper (insert/lookup/remove) or metadata (lookup-heavy with appends)")
		dist       = flag.String("dist", "uniform", "key distribution: uniform or zipf")
		keys       = flag.Int("keys", 100000, "keyspace size per client for -mix/-dist workloads")
		batch      = flag.Int("batch", 1, "group ops into Batch calls of this size (1 = lockstep)")
		smoke      = flag.Bool("smoke", false, "run the batching smoke check: lockstep vs -batch over loopback TCP, exit 1 if speedup < -smoke-min")
		smokeMin   = flag.Float64("smoke-min", 3.0, "minimum batch/lockstep throughput ratio for -smoke")
		chaosSeed  = flag.Int64("chaos", 0, "fault-injection seed: run client traffic through a lossy, slow, ack-dropping network (0 = off)")
		metricsOn  = flag.Bool("metrics", false, "record into the metrics registry and print p50/p90/p99/p999 latency plus subsystem counters")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics and /debug/pprof on this address during the run (implies -metrics)")
		durability = flag.String("durability", "async", "WAL acknowledgement mode: none, async, group, or sync (needs -data to matter)")
		durSweep   = flag.Bool("durability-sweep", false, "measure throughput per durability mode over loopback TCP and print the group-commit win")
		antiEnt    = flag.Duration("anti-entropy", 0, "anti-entropy period: replicas diff partition digests against their authority and pull divergent ranges this often (0 = off)")
		repSweep   = flag.Bool("repair-sweep", false, "measure the anti-entropy loop's throughput overhead at 0/1/2 replicas and print per-replica-count cost")
		consSweep  = flag.Bool("consistency-sweep", false, "measure write/read latency and throughput per consistency level (ONE/QUORUM/ALL) at 2 replicas, plus the measured stale-copy rate behind ONE writes")
		churn      = flag.Bool("churn", false, "alternate joining and departing one instance in the background for the whole run (inproc only; implies -metrics) and report membership churn plus migration counters")
		churnEvery = flag.Duration("churn-every", 250*time.Millisecond, "pause between membership changes in -churn mode")
		tenSweep   = flag.Bool("tenants", false, "run the noisy-neighbor sweep: two tenants at ~10:1 offered load, without and then with an admission quota on the noisy one, and print per-tenant throughput/latency plus shed counts")
	)
	flag.Parse()
	dur, err := storage.ParseDurability(*durability)
	if err != nil {
		log.Fatal(err)
	}
	if *durSweep {
		runDurabilitySweep(*ops)
		return
	}
	if *repSweep {
		runRepairSweep(*ops, *antiEnt)
		return
	}
	if *consSweep {
		runConsistencySweep(*ops)
		return
	}
	if *tenSweep {
		runTenantSweep(*ops)
		return
	}
	if *smoke {
		b := *batch
		if b <= 1 {
			b = 64
		}
		runSmoke(b, *smokeMin)
		return
	}
	if *churn {
		if *trans != "inproc" {
			log.Fatal("zht-bench: -churn requires -transport inproc")
		}
		*metricsOn = true // the membership/migration counters are the point
	}
	var reg *metrics.Registry
	if *metricsOn || *debugAddr != "" {
		reg = metrics.NewRegistry()
		// The message/buffer pools are process-global, so their
		// instruments are registered here rather than per component.
		wire.EnablePoolMetrics(reg)
		transport.EnableBufMetrics(reg)
	}
	cfg := core.Config{
		NumPartitions: *partitions, Replicas: *replicas,
		DataDir: *dataDir, Durability: dur,
		AntiEntropy: *antiEnt,
		RetryBase:   time.Millisecond,
		Metrics:     reg,
	}
	if *debugAddr != "" {
		ln, stop, err := metrics.ServeDebug(*debugAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
		fmt.Printf("debug endpoint: http://%s/metrics\n", ln.Addr())
	}
	if *chaosSeed != 0 {
		// Degraded mode: bound each op so the run measures throughput
		// under faults instead of hanging on them.
		cfg.OpDeadline = 800 * time.Millisecond
	}
	if *churn && cfg.OpDeadline == 0 {
		// Ops that land in a cutover window retry through redirects
		// and table refreshes; bound them so the run cannot hang on a
		// mid-migration stall.
		cfg.OpDeadline = 2 * time.Second
	}
	var d *core.Deployment
	var cleanup func()
	var rawCaller func() transport.Caller
	switch *trans {
	case "inproc":
		dep, reg, err := core.BootstrapInproc(cfg, *nodes)
		if err != nil {
			log.Fatal(err)
		}
		d, cleanup = dep, func() { dep.Close() }
		rawCaller = func() transport.Caller { return reg.NewClient() }
	default:
		dep, cl, caller, err := bootNet(*nodes, cfg, *trans, reg)
		if err != nil {
			log.Fatal(err)
		}
		d, cleanup = dep, cl
		rawCaller = func() transport.Caller { return caller }
	}
	defer cleanup()

	// newClient builds one bench client; under -chaos its traffic runs
	// through a scripted degraded network (loss, slow links, lost acks).
	newClient := func(ci int) (*core.Client, error) { return d.NewClient() }
	var unavail, attempted atomic.Int64
	tolerate := func(err error) bool { return false }
	if *chaosSeed != 0 {
		sc := degradedScenario()
		newClient = func(ci int) (*core.Client, error) {
			ch := chaos.Wrap(rawCaller(), sc, chaos.Options{
				Seed: *chaosSeed + int64(ci), LossTimeout: 25 * time.Millisecond,
				Metrics: reg,
			})
			return core.NewClient(cfg, d.Instance(0).Table(), ch)
		}
		// Degraded mode tolerates bounded unavailability (and the
		// NotFound shadows it casts on later ops in a round).
		tolerate = func(err error) bool {
			if errors.Is(err, core.ErrUnavailable) || errors.Is(err, core.ErrNotFound) {
				unavail.Add(1)
				return true
			}
			return false
		}
	}

	// -churn: one background goroutine alternates growing the ring by
	// one instance and shrinking it back, every -churn-every, for the
	// whole run. The workload tolerates the bounded unavailability a
	// cutover can surface, and the run reports how much data the
	// throttled migration engine moved underneath the bench.
	var joins, departs atomic.Int64
	churnStop := make(chan struct{})
	var churnWG sync.WaitGroup
	if *churn {
		tolerate = func(err error) bool {
			if errors.Is(err, core.ErrUnavailable) || errors.Is(err, core.ErrNotFound) {
				unavail.Add(1)
				return true
			}
			return false
		}
		base := d.Size()
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			for i := 0; ; i++ {
				select {
				case <-churnStop:
					return
				case <-time.After(*churnEvery):
				}
				if d.Size() <= base {
					ep := core.Endpoint{
						Addr: fmt.Sprintf("zht-churn-%04d", i),
						Node: fmt.Sprintf("node-churn-%04d", i),
					}
					if _, err := d.Join(ep); err == nil {
						joins.Add(1)
					}
				} else if err := d.Depart(d.Size() - 1); err == nil {
					departs.Add(1)
				}
			}
		}()
	}

	val := make([]byte, 132)
	var wg sync.WaitGroup
	errCh := make(chan error, *nodes)
	start := time.Now()
	for ci := 0; ci < *nodes; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := newClient(ci)
			if err != nil {
				errCh <- err
				return
			}
			if *mix != "paper" || *dist != "uniform" {
				if err := runGenerated(c, ci, *ops*3, *batch, *mix, *dist, *keys, tolerate); err != nil {
					errCh <- err
					return
				}
				attempted.Add(int64(*ops * 3))
				return
			}
			if err := runPaper(c, ci, *ops, *batch, &attempted, tolerate, val); err != nil {
				errCh <- err
			}
		}(ci)
	}
	wg.Wait()
	el := time.Since(start)
	if *churn {
		close(churnStop)
		churnWG.Wait()
	}
	close(errCh)
	for err := range errCh {
		log.Fatal(err)
	}
	total := int(attempted.Load())
	fmt.Printf("transport=%s nodes=%d replicas=%d: %d ops in %s\n",
		*trans, *nodes, *replicas, total, el.Round(time.Millisecond))
	fmt.Printf("latency  %.3f ms/op\n", float64(el.Nanoseconds())/1e6/float64(total)*float64(*nodes))
	fmt.Printf("throughput  %.0f ops/s\n", float64(total)/el.Seconds())
	if *chaosSeed != 0 {
		failed := int(unavail.Load())
		fmt.Printf("chaos seed=%d: %d/%d ops unavailable; degraded goodput %.0f ops/s\n",
			*chaosSeed, failed, total, float64(total-failed)/el.Seconds())
	}
	if *churn {
		fmt.Printf("churn: %d joins, %d departs (every %s); %d/%d ops unavailable during cutovers\n",
			joins.Load(), departs.Load(), *churnEvery, unavail.Load(), total)
	}
	if reg != nil {
		printRegistryMetrics(reg)
	}
}

// runPaper drives the paper's insert/lookup/remove sequence. With
// batch ≤ 1 each op is a lockstep round trip; otherwise ops are
// grouped into Batch calls of `batch` keys per phase, so each phase
// costs one envelope round trip per destination instead of one per
// key.
func runPaper(c *core.Client, ci, ops, batch int, attempted *atomic.Int64, tolerate func(error) bool, val []byte) error {
	if batch <= 1 {
		for i := 0; i < ops; i++ {
			k := fmt.Sprintf("c%04dk%09d", ci, i)[:15]
			attempted.Add(1)
			if err := c.Insert(k, val); err != nil && !tolerate(err) {
				return err
			} else if err != nil {
				continue
			}
			attempted.Add(1)
			if _, err := c.Lookup(k); err != nil && !tolerate(err) {
				return err
			} else if err != nil {
				continue
			}
			attempted.Add(1)
			if err := c.Remove(k); err != nil && !tolerate(err) {
				return err
			}
		}
		return nil
	}
	for i := 0; i < ops; i += batch {
		n := batch
		if ops-i < n {
			n = ops - i
		}
		keys := make([]string, n)
		for j := range keys {
			keys[j] = fmt.Sprintf("c%04dk%09d", ci, i+j)[:15]
		}
		build := func(op wire.Op, v []byte) []core.BatchOp {
			bs := make([]core.BatchOp, n)
			for j, k := range keys {
				bs[j] = core.BatchOp{Op: op, Key: k, Value: v}
			}
			return bs
		}
		for _, phase := range [][]core.BatchOp{
			build(wire.OpInsert, val),
			build(wire.OpLookup, nil),
			build(wire.OpRemove, nil),
		} {
			attempted.Add(int64(n))
			rs, err := c.Batch(phase)
			if err != nil {
				return err
			}
			for _, r := range rs {
				if r.Err != nil && !tolerate(r.Err) {
					return r.Err
				}
			}
		}
	}
	return nil
}

// runSmoke is the CI batching check: boot a loopback-TCP deployment,
// measure lockstep and batched throughput at equal client count, and
// fail unless batching wins by at least minRatio.
func runSmoke(batch int, minRatio float64) {
	cfg := core.Config{NumPartitions: 256, RetryBase: time.Millisecond}
	const clients, rounds = 4, 400
	d, cleanup, _, err := bootNet(clients, cfg, "tcp-cache", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup()
	tolerate := func(error) bool { return false }
	val := make([]byte, 132)
	run := func(b, gen int) float64 {
		var attempted atomic.Int64
		var wg sync.WaitGroup
		errCh := make(chan error, clients)
		start := time.Now()
		for ci := 0; ci < clients; ci++ {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				c, err := d.NewClient()
				if err != nil {
					errCh <- err
					return
				}
				// gen offsets client IDs so the two runs touch
				// disjoint keys.
				if err := runPaper(c, gen*clients+ci, rounds, b, &attempted, tolerate, val); err != nil {
					errCh <- err
				}
			}(ci)
		}
		wg.Wait()
		el := time.Since(start)
		close(errCh)
		for err := range errCh {
			log.Fatal(err)
		}
		return float64(attempted.Load()) / el.Seconds()
	}
	lockstep := run(1, 0)
	batched := run(batch, 1)
	ratio := batched / lockstep
	fmt.Printf("smoke: lockstep %.0f ops/s, batch=%d %.0f ops/s, speedup %.2fx (min %.1fx)\n",
		lockstep, batch, batched, ratio, minRatio)
	if ratio < minRatio {
		fmt.Println("smoke: FAIL — batching speedup below threshold")
		os.Exit(1)
	}
}

// runDurabilitySweep measures a mutation-only insert workload over
// loopback TCP once per durability mode — same client count, disjoint
// data directories — and prints per-mode throughput. The group/sync
// ratio is the group-commit win: both modes fsync before
// acknowledging, but group amortizes each fsync across the whole
// commit batch. The workload is all mutations because that is what a
// durability mode prices: lookups never touch the WAL, so mixing them
// in only dilutes the thing being measured.
func runDurabilitySweep(rounds int) {
	// Few partitions on few servers so concurrent mutations actually
	// share a WAL — group commit amortizes fsyncs only across records
	// that are in flight on the same log. One partition per server is
	// the per-store worst case for sync and the best case for group.
	const clients, servers, partitions = 64, 1, 1
	if rounds > 400 {
		rounds = 400 // per-op fsyncs make sync mode slow; keep the sweep short
	}
	modes := []storage.Durability{
		storage.DurabilityNone, storage.DurabilityAsync,
		storage.DurabilityGroup, storage.DurabilitySync,
	}
	val := make([]byte, 132)

	tput := make(map[storage.Durability]float64)
	for _, mode := range modes {
		dir, err := os.MkdirTemp("", "zht-dur")
		if err != nil {
			log.Fatal(err)
		}
		cfg := core.Config{
			NumPartitions: partitions, RetryBase: time.Millisecond,
			DataDir: dir, Durability: mode,
		}
		d, cleanup, _, err := bootNet(servers, cfg, "tcp-cache", nil)
		if err != nil {
			log.Fatal(err)
		}
		var attempted atomic.Int64
		var wg sync.WaitGroup
		errCh := make(chan error, clients)
		start := time.Now()
		for ci := 0; ci < clients; ci++ {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				own := transport.NewTCPClient(transport.TCPClientOptions{ConnCache: true})
				defer own.Close()
				c, err := core.NewClient(cfg, d.Instance(0).Table(), own)
				if err != nil {
					errCh <- err
					return
				}
				for i := 0; i < rounds; i++ {
					k := fmt.Sprintf("c%04dk%09d", ci, i)[:15]
					attempted.Add(1)
					if err := c.Insert(k, val); err != nil {
						errCh <- err
						return
					}
				}
			}(ci)
		}
		wg.Wait()
		el := time.Since(start)
		close(errCh)
		for err := range errCh {
			log.Fatal(err)
		}
		cleanup()
		os.RemoveAll(dir)
		tput[mode] = float64(attempted.Load()) / el.Seconds()
		fmt.Printf("durability=%-5s  %8.0f ops/s  (%d clients, %d rounds, loopback TCP)\n",
			mode, tput[mode], clients, rounds)
	}
	fmt.Printf("group-commit win: group/sync = %.2fx; async/none = %.2fx\n",
		tput[storage.DurabilityGroup]/tput[storage.DurabilitySync],
		tput[storage.DurabilityAsync]/tput[storage.DurabilityNone])
}

// runRepairSweep prices the anti-entropy loop: the same insert
// workload runs at 0, 1, and 2 replicas per partition, each twice —
// with the loop off (seed behavior) and with a fast period — and the
// throughput ratio is the repair overhead. In the steady state every
// digest probe finds equal trees, so the cost measured here is the
// background digest traffic itself, the analytic model's RepairRate
// term (internal/sim). Replica counts beyond 0 also pay for
// replication itself; comparing off vs on within one replica count
// isolates the repair share.
func runRepairSweep(rounds int, period time.Duration) {
	const clients, servers, partitions = 16, 4, 64
	if period <= 0 {
		period = 10 * time.Millisecond // aggressive on purpose: make the overhead visible
	}
	if rounds > 5000 {
		rounds = 5000
	}
	val := make([]byte, 132)
	for _, reps := range []int{0, 1, 2} {
		var tput [2]float64
		for mode, ae := range []time.Duration{0, period} {
			cfg := core.Config{
				NumPartitions: partitions, Replicas: reps,
				AntiEntropy: ae, RetryBase: time.Millisecond,
			}
			d, _, err := core.BootstrapInproc(cfg, servers)
			if err != nil {
				log.Fatal(err)
			}
			var attempted atomic.Int64
			var wg sync.WaitGroup
			errCh := make(chan error, clients)
			start := time.Now()
			for ci := 0; ci < clients; ci++ {
				wg.Add(1)
				go func(ci int) {
					defer wg.Done()
					c, err := d.NewClient()
					if err != nil {
						errCh <- err
						return
					}
					for i := 0; i < rounds; i++ {
						k := fmt.Sprintf("r%dc%03dk%09d", reps, ci, i)
						attempted.Add(1)
						if err := c.Insert(k, val); err != nil {
							errCh <- err
							return
						}
					}
				}(ci)
			}
			wg.Wait()
			el := time.Since(start)
			close(errCh)
			for err := range errCh {
				log.Fatal(err)
			}
			d.Close()
			tput[mode] = float64(attempted.Load()) / el.Seconds()
		}
		overhead := (1 - tput[1]/tput[0]) * 100
		fmt.Printf("replicas=%d  off %9.0f ops/s  anti-entropy(%v) %9.0f ops/s  overhead %+5.1f%%\n",
			reps, tput[0], period, tput[1], overhead)
	}
}

// runConsistencySweep prices the consistency ladder: the same
// write+read workload runs once per level (ONE, QUORUM, ALL) against
// one topology — 4 servers, 2 replicas per partition, so every write
// has three copies and the levels genuinely differ (ONE waits on the
// primary plus its always-sync first replica leg, QUORUM on 2 of 3
// acks, ALL on all 3; the replica legs are serial RPCs, so each extra
// sync leg is a full round trip). Every link — client→owner and the
// owner's replica legs alike — carries an emulated fixed one-way
// delay through the chaos caller: on bare loopback a warm replica leg
// costs less than scheduler jitter, so leg counts (the thing a
// consistency level actually buys) would drown in noise, where
// against a uniform link delay they are exactly what the sweep
// resolves. Latency is measured per op and aggregated across clients;
// the headline number is the ONE/ALL median-write-latency ratio, the
// price of the extra synchronous leg ALL waits on. Medians, not
// means: retried ops put multi-millisecond outliers in the tail.
//
// The sweep also measures what ONE's speed costs: a single-threaded
// prober writes at ONE and immediately reads every replica copy
// directly (the instance's in-process Handle — the probe must not
// ride the delayed network it is trying to outrun), counting copies
// that do not yet hold the acked value. That fraction is the measured
// stale-read window a failover read could hit before hinted handoff
// or anti-entropy closes it. The first replica leg is synchronous at
// every level, so copy 1 is never stale by construction; the measured
// rate is the async tail's window.
func runConsistencySweep(rounds int) {
	// Few clients, not a saturating swarm: the sweep prices the
	// per-op leg count, and queueing delay under saturation drowns
	// the very difference being measured. linkLat is a millisecond —
	// large enough that the emulated delay, not the sleep timer's
	// overshoot, is what each leg costs.
	const clients, servers, partitions = 4, 4, 64
	const linkLat = time.Millisecond
	if rounds > 3000 {
		rounds = 3000
	}
	val := make([]byte, 132)
	levels := []wire.Consistency{
		wire.ConsistencyOne, wire.ConsistencyQuorum, wire.ConsistencyAll,
	}
	sc := &chaos.Scenario{Steps: []chaos.Step{
		{At: 0, Label: "uniform link delay", Rules: []chaos.Rule{{Latency: linkLat}}},
	}}
	boot := func(replicas int) (*core.Deployment, *transport.Registry) {
		cfg := core.Config{
			NumPartitions: partitions, Replicas: replicas,
			RetryBase: time.Millisecond,
		}
		reg := transport.NewRegistry()
		d, err := core.Bootstrap(cfg, core.InprocEndpoints(servers),
			func(addr string, h transport.Handler) (transport.Listener, error) {
				return reg.Listen(addr, h)
			}, chaos.Wrap(reg.NewClient(), sc, chaos.Options{Seed: 1}))
		if err != nil {
			log.Fatal(err)
		}
		return d, reg
	}
	newClient := func(d *core.Deployment, reg *transport.Registry, replicas int, seed int64) (*core.Client, error) {
		return core.NewClient(core.Config{
			NumPartitions: partitions, Replicas: replicas,
			RetryBase: time.Millisecond,
		}, d.Instance(0).Table(), chaos.Wrap(reg.NewClient(), sc, chaos.Options{Seed: seed}))
	}
	type stats struct {
		tput float64
		p50  time.Duration
		p99  time.Duration
	}
	aggregate := func(all [][]time.Duration, elapsed time.Duration) stats {
		var merged []time.Duration
		for _, ls := range all {
			merged = append(merged, ls...)
		}
		sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
		return stats{
			tput: float64(len(merged)) / elapsed.Seconds(),
			p50:  merged[len(merged)/2],
			p99:  merged[len(merged)*99/100],
		}
	}
	fmt.Printf("consistency sweep: %d servers, %d clients x %d rounds, %v emulated one-way link delay\n",
		servers, clients, rounds, linkLat)
	for _, replicas := range []int{1, 2} {
		write := make(map[wire.Consistency]stats)
		for _, level := range levels {
			d, reg := boot(replicas)
			var wg sync.WaitGroup
			errCh := make(chan error, clients)
			wlats := make([][]time.Duration, clients)
			rlats := make([][]time.Duration, clients)
			var welapsed, relapsed time.Duration
			for phase := 0; phase < 2; phase++ {
				start := time.Now()
				for ci := 0; ci < clients; ci++ {
					wg.Add(1)
					go func(ci, phase int) {
						defer wg.Done()
						c, err := newClient(d, reg, replicas, int64(100+ci))
						if err != nil {
							errCh <- err
							return
						}
						lats := make([]time.Duration, 0, rounds)
						for i := 0; i < rounds; i++ {
							k := fmt.Sprintf("l%dc%03dk%09d", level, ci, i)
							t0 := time.Now()
							if phase == 0 {
								err = c.InsertWith(k, val, level)
							} else {
								_, err = c.LookupWith(k, level)
							}
							lats = append(lats, time.Since(t0))
							if err != nil {
								errCh <- err
								return
							}
						}
						if phase == 0 {
							wlats[ci] = lats
						} else {
							rlats[ci] = lats
						}
					}(ci, phase)
				}
				wg.Wait()
				if phase == 0 {
					welapsed = time.Since(start)
				} else {
					relapsed = time.Since(start)
				}
			}
			close(errCh)
			for err := range errCh {
				log.Fatal(err)
			}
			d.Close()
			w, r := aggregate(wlats, welapsed), aggregate(rlats, relapsed)
			write[level] = w
			fmt.Printf("replicas=%d level=%-6s  write %8.0f ops/s  p50 %8v  p99 %8v | read %8.0f ops/s  p50 %8v  p99 %8v\n",
				replicas, level, w.tput, w.p50.Round(100*time.Nanosecond), w.p99.Round(100*time.Nanosecond),
				r.tput, r.p50.Round(100*time.Nanosecond), r.p99.Round(100*time.Nanosecond))
		}
		fmt.Printf("replicas=%d one/all median write latency ratio: %.2fx\n",
			replicas, float64(write[wire.ConsistencyOne].p50)/float64(write[wire.ConsistencyAll].p50))
	}

	// The staleness probe. The prober is a co-located client (the
	// paper's deployment shape: every node runs both) on an UNdelayed
	// link, so its ack arrives before the delayed replica legs land —
	// the measurement isolates the replication tail, not the probe's
	// own network. Copy 1 is the always-sync first leg; copies past it
	// are the async tail, and for each stale one the probe polls until
	// the value lands, yielding the staleness window's width. Probed
	// at replicas=2: the only topology above with an async tail.
	const probeReplicas = 2
	d, reg := boot(probeReplicas)
	defer d.Close()
	cfg := core.Config{
		NumPartitions: partitions, Replicas: probeReplicas,
		RetryBase: time.Millisecond,
	}
	c, err := core.NewClient(cfg, d.Instance(0).Table(), reg.NewClient())
	if err != nil {
		log.Fatal(err)
	}
	table := d.Instance(0).Table()
	hashf := hashing.ByName("")
	byID := map[ring.InstanceID]*core.Instance{}
	for _, in := range d.Instances() {
		byID[in.ID()] = in
	}
	fresh := func(in *core.Instance, p int, k string, v []byte) bool {
		resp := in.Handle(&wire.Request{
			Op: wire.OpLookup, Partition: int64(p), Key: k,
			Flags: wire.FlagReplicaRead,
		})
		return resp.Status == wire.StatusOK && string(resp.Value) == string(v)
	}
	var syncProbes, syncStale, tailProbes, tailStale int
	var lags []time.Duration
	for i := 0; i < rounds; i++ {
		k := fmt.Sprintf("stale-probe-%09d", i)
		v := []byte(fmt.Sprintf("v%09d", i))
		if err := c.InsertWith(k, v, wire.ConsistencyOne); err != nil {
			log.Fatal(err)
		}
		acked := time.Now()
		p := table.Partition(hashf(k))
		for ri, rep := range table.ReplicasOf(p, probeReplicas) {
			in := byID[rep.ID]
			ok := fresh(in, p, k, v)
			if ri == 0 {
				syncProbes++
				if !ok {
					syncStale++
				}
				continue
			}
			tailProbes++
			if ok {
				lags = append(lags, 0)
				continue
			}
			tailStale++
			for !fresh(in, p, k, v) {
				time.Sleep(10 * time.Microsecond)
			}
			lags = append(lags, time.Since(acked))
		}
	}
	sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
	fmt.Printf("ONE staleness probe (co-located client): sync copy stale %d/%d (%.2f%%); async copy stale %d/%d (%.2f%%), window p50 %v p99 %v\n",
		syncStale, syncProbes, 100*float64(syncStale)/float64(syncProbes),
		tailStale, tailProbes, 100*float64(tailStale)/float64(tailProbes),
		lags[len(lags)/2].Round(time.Microsecond), lags[len(lags)*99/100].Round(time.Microsecond))
}

// degradedScenario is the default -chaos schedule: a persistently bad
// network — loss on the request leg, lost acks, and jittery slow
// links — rather than a staged outage, so throughput numbers describe
// steady-state degraded operation.
func degradedScenario() *chaos.Scenario {
	return &chaos.Scenario{Steps: []chaos.Step{{
		At:    0,
		Label: "degraded network",
		Rules: []chaos.Rule{
			{Drop: 0.05, DropReply: 0.02},
			chaos.SlowLink("", "", 100*time.Microsecond, 500*time.Microsecond),
		},
	}}}
}

// runGenerated drives a loadgen workload: op mixes and key
// distributions beyond the paper's fixed sequence. With batch > 1 the
// generated stream is chunked into mixed-op Batch calls.
func runGenerated(c *core.Client, clientID, nOps, batch int, mixName, distName string, keys int, tolerate func(error) bool) error {
	var m loadgen.Mix
	switch mixName {
	case "paper":
		m = loadgen.PaperMicrobench()
	case "metadata":
		m = loadgen.MetadataHeavy()
	default:
		return fmt.Errorf("unknown mix %q", mixName)
	}
	var kd loadgen.KeyDist
	switch distName {
	case "uniform":
		kd = loadgen.Uniform{Keys: keys}
	case "zipf":
		kd = loadgen.Zipf{Keys: keys, S: 1.3}
	default:
		return fmt.Errorf("unknown distribution %q", distName)
	}
	g, err := loadgen.New(loadgen.Options{
		Mix: m, Dist: kd, Seed: int64(clientID) + 1,
		KeyPrefix: fmt.Sprintf("c%04d/", clientID),
	})
	if err != nil {
		return err
	}
	if batch > 1 {
		return runGeneratedBatched(c, g, nOps, batch, tolerate)
	}
	for i := 0; i < nOps; i++ {
		op := g.Next()
		switch op.Kind {
		case loadgen.OpInsert:
			err = c.Insert(op.Key, op.Value)
		case loadgen.OpLookup:
			if _, lerr := c.Lookup(op.Key); lerr != nil && !errors.Is(lerr, core.ErrNotFound) {
				err = lerr
			}
		case loadgen.OpRemove:
			if rerr := c.Remove(op.Key); rerr != nil && !errors.Is(rerr, core.ErrNotFound) {
				err = rerr
			}
		case loadgen.OpAppend:
			err = c.Append(op.Key, op.Value)
		}
		if err != nil {
			if tolerate(err) {
				err = nil
				continue
			}
			return fmt.Errorf("%s %s: %w", op.Kind, op.Key, err)
		}
	}
	return nil
}

// runGeneratedBatched chunks the generated op stream into mixed
// Batch calls — the realistic shape for -batch with non-paper mixes,
// where inserts, lookups, and appends share an envelope.
func runGeneratedBatched(c *core.Client, g *loadgen.Generator, nOps, batch int, tolerate func(error) bool) error {
	buf := make([]core.BatchOp, 0, batch)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		rs, err := c.Batch(buf)
		if err != nil {
			return err
		}
		for i, r := range rs {
			if r.Err == nil {
				continue
			}
			readMiss := (buf[i].Op == wire.OpLookup || buf[i].Op == wire.OpRemove) &&
				errors.Is(r.Err, core.ErrNotFound)
			if readMiss || tolerate(r.Err) {
				continue
			}
			return fmt.Errorf("%s %s: %w", buf[i].Op, buf[i].Key, r.Err)
		}
		buf = buf[:0]
		return nil
	}
	for i := 0; i < nOps; i++ {
		op := g.Next()
		b := core.BatchOp{Key: op.Key}
		switch op.Kind {
		case loadgen.OpInsert:
			b.Op, b.Value = wire.OpInsert, op.Value
		case loadgen.OpLookup:
			b.Op = wire.OpLookup
		case loadgen.OpRemove:
			b.Op = wire.OpRemove
		case loadgen.OpAppend:
			b.Op, b.Value = wire.OpAppend, op.Value
		}
		buf = append(buf, b)
		if len(buf) == batch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// bootNet mirrors the figures harness: n instances over real loopback
// sockets. reg (may be nil) wires the transport-level instruments.
func bootNet(n int, cfg core.Config, kind string, reg *metrics.Registry) (*core.Deployment, func(), transport.Caller, error) {
	var caller transport.Caller
	switch kind {
	case "tcp-cache":
		caller = transport.NewTCPClient(transport.TCPClientOptions{ConnCache: true, Metrics: reg})
	case "tcp-nocache":
		caller = transport.NewTCPClient(transport.TCPClientOptions{ConnCache: false, Metrics: reg})
	case "udp":
		caller = transport.NewUDPClient(transport.UDPClientOptions{Timeout: 2 * time.Second, Metrics: reg})
	default:
		return nil, nil, nil, fmt.Errorf("unknown transport %q", kind)
	}
	var lns []transport.Listener
	var switches []*core.HandlerSwitch
	eps := make([]core.Endpoint, n)
	for i := range eps {
		hs := &core.HandlerSwitch{}
		var ln transport.Listener
		var err error
		if kind == "udp" {
			ln, err = transport.ListenUDP("127.0.0.1:0", hs.Handle, transport.WithServerMetrics(reg))
		} else {
			ln, err = transport.ListenTCP("127.0.0.1:0", hs.Handle, transport.EventDriven, transport.WithServerMetrics(reg))
		}
		if err != nil {
			return nil, nil, nil, err
		}
		lns = append(lns, ln)
		switches = append(switches, hs)
		eps[i] = core.Endpoint{Addr: ln.Addr(), Node: fmt.Sprintf("n%03d", i)}
	}
	d, err := core.Bootstrap(cfg, eps, func(addr string, h transport.Handler) (transport.Listener, error) {
		for i, ep := range eps {
			if ep.Addr == addr {
				switches[i].Set(h)
				return nopListener{addr}, nil
			}
		}
		return nil, fmt.Errorf("unbound %s", addr)
	}, caller)
	if err != nil {
		return nil, nil, nil, err
	}
	return d, func() {
		d.Close()
		for _, ln := range lns {
			ln.Close()
		}
		caller.Close()
	}, caller, nil
}

type nopListener struct{ addr string }

func (l nopListener) Addr() string { return l.addr }
func (l nopListener) Close() error { return nil }

// runTenantSweep prices admission control the way an operator would
// see it: two tenants share one deployment, the noisy one offering
// roughly an order of magnitude more load than the calm one, and the
// same workload runs twice — once with no quotas (the noisy tenant
// queues everyone) and once with a token-bucket quota on the noisy
// tenant (over-quota requests are shed at the gate with StatusBusy
// before they touch a partition). The headline numbers are the calm
// tenant's p50/p99 against its isolated baseline: with the quota on,
// the calm tenant should sit near its baseline while the noisy
// tenant's surplus shows up as sheds, not as everyone's queueing
// delay.
func runTenantSweep(rounds int) {
	const servers, partitions, floodWorkers = 4, 64, 8
	if rounds > 2000 {
		rounds = 2000
	}
	type stats struct {
		tput float64
		p50  time.Duration
		p99  time.Duration
	}
	summarize := func(lats []time.Duration, elapsed time.Duration) stats {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return stats{
			tput: float64(len(lats)) / elapsed.Seconds(),
			p50:  lats[len(lats)/2],
			p99:  lats[len(lats)*99/100],
		}
	}
	baseCfg := func() core.Config {
		return core.Config{
			NumPartitions: partitions, Replicas: 1,
			RetryBase: time.Millisecond, RetryMax: 4 * time.Millisecond,
			OpRetries: 1, OpDeadline: 2 * time.Second,
		}
	}
	// run executes one configuration: flood on/off, quota on/off.
	// It returns the calm tenant's latency stats plus the noisy
	// tenant's completed-op count and shed count.
	run := func(flood, quota bool) (stats, int64, int64) {
		cfg := baseCfg()
		var adm *tenant.Admission
		if quota {
			treg := tenant.NewRegistry()
			// The noisy bucket refills well below the flood's offered
			// load; the calm bucket is effectively unlimited.
			if err := treg.Register(tenant.Tenant{Name: "noisy", Rate: 2000, Burst: 200}); err != nil {
				log.Fatal(err)
			}
			if err := treg.Register(tenant.Tenant{Name: "calm", Rate: 1e7, Burst: 1e6}); err != nil {
				log.Fatal(err)
			}
			adm = tenant.NewAdmission(treg, tenant.AdmissionOptions{})
			cfg.Admission = adm
		}
		d, _, err := core.BootstrapInproc(cfg, servers)
		if err != nil {
			log.Fatal(err)
		}
		defer d.Close()

		var flooding atomic.Bool
		var noisyOK atomic.Int64
		var wg, started sync.WaitGroup
		if flood {
			flooding.Store(true)
			for g := 0; g < floodWorkers; g++ {
				wg.Add(1)
				started.Add(1)
				go func(g int) {
					defer wg.Done()
					nc, err := d.NewClient()
					if err != nil {
						started.Done()
						return
					}
					noisy := tenant.NewClient(nc, tenant.Tenant{Name: "noisy"})
					for i := 0; flooding.Load(); i++ {
						// Errors (ErrUnavailable after busy retries
						// exhaust) are the quota doing its job.
						if noisy.Insert(fmt.Sprintf("flood-%d-%d", g, i), []byte("x")) == nil {
							noisyOK.Add(1)
						}
						if i == 0 {
							started.Done()
						}
					}
				}(g)
			}
			started.Wait()
		}

		cc, err := d.NewClient()
		if err != nil {
			log.Fatal(err)
		}
		calm := tenant.NewClient(cc, tenant.Tenant{Name: "calm"})
		lats := make([]time.Duration, 0, rounds)
		start := time.Now()
		for i := 0; i < rounds; i++ {
			k := fmt.Sprintf("calm-%09d", i)
			t0 := time.Now()
			if err := calm.Insert(k, []byte("v")); err != nil {
				log.Fatalf("calm insert: %v", err)
			}
			if _, err := calm.Lookup(k); err != nil {
				log.Fatalf("calm lookup: %v", err)
			}
			lats = append(lats, time.Since(t0))
		}
		elapsed := time.Since(start)
		flooding.Store(false)
		wg.Wait()
		var shed int64
		if adm != nil {
			shed = adm.ShedCount("noisy")
		}
		return summarize(lats, elapsed), noisyOK.Load(), shed
	}

	fmt.Printf("tenant sweep: %d servers, %d flood workers vs 1 calm client x %d rounds (insert+lookup pairs)\n",
		servers, floodWorkers, rounds)
	base, _, _ := run(false, false)
	fmt.Printf("isolated     calm %8.0f pairs/s  p50 %8v  p99 %8v\n",
		base.tput, base.p50.Round(100*time.Nanosecond), base.p99.Round(100*time.Nanosecond))
	off, noisyOff, _ := run(true, false)
	fmt.Printf("quota=off    calm %8.0f pairs/s  p50 %8v  p99 %8v | noisy ok %8d  shed      n/a\n",
		off.tput, off.p50.Round(100*time.Nanosecond), off.p99.Round(100*time.Nanosecond), noisyOff)
	on, noisyOn, shed := run(true, true)
	fmt.Printf("quota=on     calm %8.0f pairs/s  p50 %8v  p99 %8v | noisy ok %8d  shed %8d\n",
		on.tput, on.p50.Round(100*time.Nanosecond), on.p99.Round(100*time.Nanosecond), noisyOn, shed)
	fmt.Printf("calm p50 vs isolated: quota=off %.2fx, quota=on %.2fx\n",
		float64(off.p50)/float64(base.p50), float64(on.p50)/float64(base.p50))
	if float64(on.p50) > 1.5*float64(base.p50) {
		fmt.Println("WARN: quota-protected calm p50 exceeds 1.5x its isolated baseline")
	}
}
