// Command zht-bench runs the paper's micro-benchmark (§IV.A: 15-byte
// keys, 132-byte values, all-to-all insert/lookup/remove with 1:1
// clients and servers) against an in-process deployment.
//
//	zht-bench -nodes 16 -ops 2000 -replicas 2
//	zht-bench -nodes 4 -transport tcp-cache   # real loopback TCP
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"zht/internal/core"
	"zht/internal/loadgen"
	"zht/internal/transport"
)

func main() {
	var (
		nodes      = flag.Int("nodes", 8, "instances (and concurrent clients)")
		ops        = flag.Int("ops", 2000, "insert+lookup+remove rounds per client")
		partitions = flag.Int("partitions", 1024, "partition count")
		replicas   = flag.Int("replicas", 0, "replicas per partition")
		trans      = flag.String("transport", "inproc", "inproc, tcp-cache, tcp-nocache, udp")
		dataDir    = flag.String("data", "", "persist partitions under this directory")
		mix        = flag.String("mix", "paper", "op mix: paper (insert/lookup/remove) or metadata (lookup-heavy with appends)")
		dist       = flag.String("dist", "uniform", "key distribution: uniform or zipf")
		keys       = flag.Int("keys", 100000, "keyspace size per client for -mix/-dist workloads")
	)
	flag.Parse()
	cfg := core.Config{
		NumPartitions: *partitions, Replicas: *replicas,
		DataDir: *dataDir, RetryBase: time.Millisecond,
	}
	var d *core.Deployment
	var cleanup func()
	switch *trans {
	case "inproc":
		dep, _, err := core.BootstrapInproc(cfg, *nodes)
		if err != nil {
			log.Fatal(err)
		}
		d, cleanup = dep, func() { dep.Close() }
	default:
		dep, cl, err := bootNet(*nodes, cfg, *trans)
		if err != nil {
			log.Fatal(err)
		}
		d, cleanup = dep, cl
	}
	defer cleanup()

	val := make([]byte, 132)
	var wg sync.WaitGroup
	errCh := make(chan error, *nodes)
	start := time.Now()
	for ci := 0; ci < *nodes; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := d.NewClient()
			if err != nil {
				errCh <- err
				return
			}
			if *mix != "paper" || *dist != "uniform" {
				if err := runGenerated(c, ci, *ops*3, *mix, *dist, *keys); err != nil {
					errCh <- err
				}
				return
			}
			for i := 0; i < *ops; i++ {
				k := fmt.Sprintf("c%04dk%09d", ci, i)[:15]
				if err := c.Insert(k, val); err != nil {
					errCh <- err
					return
				}
				if _, err := c.Lookup(k); err != nil {
					errCh <- err
					return
				}
				if err := c.Remove(k); err != nil {
					errCh <- err
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	el := time.Since(start)
	close(errCh)
	for err := range errCh {
		log.Fatal(err)
	}
	total := *nodes * *ops * 3
	fmt.Printf("transport=%s nodes=%d replicas=%d: %d ops in %s\n",
		*trans, *nodes, *replicas, total, el.Round(time.Millisecond))
	fmt.Printf("latency  %.3f ms/op\n", float64(el.Nanoseconds())/1e6/float64(total)*float64(*nodes))
	fmt.Printf("throughput  %.0f ops/s\n", float64(total)/el.Seconds())
}

// runGenerated drives a loadgen workload: op mixes and key
// distributions beyond the paper's fixed sequence.
func runGenerated(c *core.Client, clientID, nOps int, mixName, distName string, keys int) error {
	var m loadgen.Mix
	switch mixName {
	case "paper":
		m = loadgen.PaperMicrobench()
	case "metadata":
		m = loadgen.MetadataHeavy()
	default:
		return fmt.Errorf("unknown mix %q", mixName)
	}
	var kd loadgen.KeyDist
	switch distName {
	case "uniform":
		kd = loadgen.Uniform{Keys: keys}
	case "zipf":
		kd = loadgen.Zipf{Keys: keys, S: 1.3}
	default:
		return fmt.Errorf("unknown distribution %q", distName)
	}
	g, err := loadgen.New(loadgen.Options{
		Mix: m, Dist: kd, Seed: int64(clientID) + 1,
		KeyPrefix: fmt.Sprintf("c%04d/", clientID),
	})
	if err != nil {
		return err
	}
	for i := 0; i < nOps; i++ {
		op := g.Next()
		switch op.Kind {
		case loadgen.OpInsert:
			err = c.Insert(op.Key, op.Value)
		case loadgen.OpLookup:
			if _, lerr := c.Lookup(op.Key); lerr != nil && !errors.Is(lerr, core.ErrNotFound) {
				err = lerr
			}
		case loadgen.OpRemove:
			if rerr := c.Remove(op.Key); rerr != nil && !errors.Is(rerr, core.ErrNotFound) {
				err = rerr
			}
		case loadgen.OpAppend:
			err = c.Append(op.Key, op.Value)
		}
		if err != nil {
			return fmt.Errorf("%s %s: %w", op.Kind, op.Key, err)
		}
	}
	return nil
}

// bootNet mirrors the figures harness: n instances over real loopback
// sockets.
func bootNet(n int, cfg core.Config, kind string) (*core.Deployment, func(), error) {
	var caller transport.Caller
	switch kind {
	case "tcp-cache":
		caller = transport.NewTCPClient(transport.TCPClientOptions{ConnCache: true})
	case "tcp-nocache":
		caller = transport.NewTCPClient(transport.TCPClientOptions{ConnCache: false})
	case "udp":
		caller = transport.NewUDPClient(transport.UDPClientOptions{Timeout: 2 * time.Second})
	default:
		return nil, nil, fmt.Errorf("unknown transport %q", kind)
	}
	var lns []transport.Listener
	var switches []*core.HandlerSwitch
	eps := make([]core.Endpoint, n)
	for i := range eps {
		hs := &core.HandlerSwitch{}
		var ln transport.Listener
		var err error
		if kind == "udp" {
			ln, err = transport.ListenUDP("127.0.0.1:0", hs.Handle)
		} else {
			ln, err = transport.ListenTCP("127.0.0.1:0", hs.Handle, transport.EventDriven)
		}
		if err != nil {
			return nil, nil, err
		}
		lns = append(lns, ln)
		switches = append(switches, hs)
		eps[i] = core.Endpoint{Addr: ln.Addr(), Node: fmt.Sprintf("n%03d", i)}
	}
	d, err := core.Bootstrap(cfg, eps, func(addr string, h transport.Handler) (transport.Listener, error) {
		for i, ep := range eps {
			if ep.Addr == addr {
				switches[i].Set(h)
				return nopListener{addr}, nil
			}
		}
		return nil, fmt.Errorf("unbound %s", addr)
	}, caller)
	if err != nil {
		return nil, nil, err
	}
	return d, func() {
		d.Close()
		for _, ln := range lns {
			ln.Close()
		}
		caller.Close()
	}, nil
}

type nopListener struct{ addr string }

func (l nopListener) Addr() string { return l.addr }
func (l nopListener) Close() error { return nil }
