package main

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"zht/internal/metrics"
)

// printRegistryMetrics renders the benchmark's registry: the
// percentile summary for every latency histogram (replacing the old
// ad-hoc mean-only math), then every counter and gauge.
func printRegistryMetrics(reg *metrics.Registry) {
	s := reg.Snapshot()
	fmt.Println("--- registry metrics ---")
	names := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		if h.Count == 0 {
			continue
		}
		fmt.Printf("%s  count=%d mean=%s p50=%s p90=%s p99=%s p999=%s max=%s\n",
			name, h.Count, fmtNs(int64(h.Mean)),
			fmtNs(h.P50), fmtNs(h.P90), fmtNs(h.P99), fmtNs(h.P999), fmtNs(h.Max))
	}
	var sb strings.Builder
	counts := metrics.Snapshot{Counters: s.Counters, Gauges: s.Gauges}
	if err := counts.WriteText(&sb); err == nil && sb.Len() > 0 {
		fmt.Fprint(os.Stdout, sb.String())
	}
}

// fmtNs renders a nanosecond quantity in the most readable unit.
func fmtNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
