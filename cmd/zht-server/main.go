// Command zht-server runs one ZHT instance of a static deployment.
//
// Every server in the deployment is started with the SAME -peers list
// (the batch scheduler's node list in the paper's static bootstrap);
// each picks its own entry with -index. Example, two servers on one
// machine:
//
//	zht-server -peers 127.0.0.1:5500,127.0.0.1:5501 -index 0 &
//	zht-server -peers 127.0.0.1:5500,127.0.0.1:5501 -index 1 &
//	zht-client -seed 127.0.0.1:5500 insert /file meta
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"zht/internal/core"
	"zht/internal/memcached"
	"zht/internal/metrics"
	"zht/internal/ring"
	"zht/internal/storage"
	"zht/internal/tenant"
	"zht/internal/transport"
	"zht/internal/wire"
)

func main() {
	var (
		peers      = flag.String("peers", "", "comma-separated addresses of ALL instances (bootstrap mode)")
		index      = flag.Int("index", 0, "this server's position in -peers")
		joinSeed   = flag.String("join", "", "join a running deployment via this seed address (dynamic membership)")
		joinAddr   = flag.String("addr", "", "this server's address when using -join")
		partitions = flag.Int("partitions", 1024, "fixed partition count n (deployment-wide)")
		replicas   = flag.Int("replicas", 2, "replicas per partition")
		dataDir    = flag.String("data", "", "directory for NoVoHT partition logs ('' = memory only)")
		proto      = flag.String("proto", "tcp", "transport: tcp or udp")
		hashName   = flag.String("hash", "", "ring hash function (default lookup3)")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
		durability = flag.String("durability", "async", "WAL acknowledgement mode: none, async, group, or sync")
		antiEnt    = flag.Duration("anti-entropy", 0, "anti-entropy period: diff partition digests against each partition's authority and pull divergent ranges this often (0 = off)")
		handoffCap = flag.Int("handoff-cap", 0, "per-destination hinted-handoff queue bound (0 = default 1024, negative disables handoff)")
		writeLevel = flag.String("write-level", "", "default write consistency level when the request does not name one: one, quorum, all (empty = quorum); reads are client-coordinated, so their default lives in the client")
		mcAddr     = flag.String("memcached-addr", "", "serve the memcached text protocol on this address (front door for stock cache clients)")
		mcTenant   = flag.String("memcached-tenant", "cache", "tenant namespace memcached traffic is scoped to ('' = unscoped keyspace)")
		quotas     = flag.String("tenant-quotas", "", "per-tenant admission quotas, comma-separated name:rate[:burst[:weight]] entries (e.g. batch:500:100:1,interactive:5000:500:4)")
		pressure   = flag.Int("tenant-pressure", 0, "total admitted in-flight requests at which weighted tenant shares engage (0 = auto: 256 when any -tenant-quotas entry sets a weight, else off; negative = weights off)")
	)
	flag.Parse()
	dur, err := storage.ParseDurability(*durability)
	if err != nil {
		log.Fatal(err)
	}
	wl, err := wire.ParseConsistency(*writeLevel)
	if err != nil {
		log.Fatalf("-write-level: %v", err)
	}
	var reg *metrics.Registry
	if *debugAddr != "" {
		reg = metrics.NewRegistry()
		dln, stop, err := metrics.ServeDebug(*debugAddr, reg)
		if err != nil {
			log.Fatalf("debug endpoint: %v", err)
		}
		defer stop()
		log.Printf("debug endpoint on http://%s/metrics", dln.Addr())
	}
	adm, err := parseQuotas(*quotas, *pressure, reg)
	if err != nil {
		log.Fatalf("-tenant-quotas: %v", err)
	}
	cfg := core.Config{
		NumPartitions: *partitions,
		Replicas:      *replicas,
		DataDir:       *dataDir,
		Durability:    dur,
		HashName:      *hashName,
		AntiEntropy:   *antiEnt,
		HandoffCap:    *handoffCap,
		WriteLevel:    wl,
		Admission:     adm,
		Metrics:       reg,
	}
	if *joinSeed != "" {
		if *joinAddr == "" {
			log.Fatal("-join requires -addr")
		}
		runJoin(cfg, *joinSeed, *joinAddr, *proto, *mcAddr, *mcTenant)
		return
	}
	addrs := strings.Split(*peers, ",")
	if *peers == "" || *index < 0 || *index >= len(addrs) {
		flag.Usage()
		os.Exit(2)
	}
	members := make([]ring.Instance, len(addrs))
	for i, a := range addrs {
		members[i] = ring.Instance{
			ID:   ring.InstanceID(fmt.Sprintf("zht-%04d", i)),
			Addr: strings.TrimSpace(a),
			Node: strings.TrimSpace(a),
		}
	}
	table, err := ring.New(*partitions, members)
	if err != nil {
		log.Fatalf("membership: %v", err)
	}
	var caller transport.Caller
	if *proto == "udp" {
		caller = transport.NewUDPClient(transport.UDPClientOptions{Metrics: reg})
	} else {
		caller = transport.NewTCPClient(transport.TCPClientOptions{ConnCache: true, Metrics: reg})
	}
	inst, err := core.NewInstance(cfg, members[*index], table, caller)
	if err != nil {
		log.Fatalf("instance: %v", err)
	}
	var ln transport.Listener
	if *proto == "udp" {
		ln, err = transport.ListenUDP(members[*index].Addr, inst.Handle, transport.WithServerMetrics(reg))
	} else {
		ln, err = transport.ListenTCP(members[*index].Addr, inst.Handle, transport.EventDriven, transport.WithServerMetrics(reg))
	}
	if err != nil {
		log.Fatalf("listen %s: %v", members[*index].Addr, err)
	}
	log.Printf("zht-server %s serving %d partitions over %s (epoch %d)",
		members[*index].ID, len(table.PartitionsOf(*index)), *proto, inst.Epoch())
	stopGW, err := startMemcached(*mcAddr, *mcTenant, inst, caller, reg)
	if err != nil {
		log.Fatalf("memcached front door: %v", err)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	stopGW()
	ln.Close()
	inst.Drain()
	if err := inst.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}
}

// defaultTenantPressure is the auto total-inflight threshold at which
// weighted shares engage when -tenant-quotas declares weights but
// -tenant-pressure is unset. Weights are meaningless without a
// pressure threshold (they would silently do nothing), so declaring
// one turns the threshold on.
const defaultTenantPressure = 256

// parseQuotas builds the tenancy admission hook from the
// -tenant-quotas flag: comma-separated name:rate[:burst[:weight]]
// entries. Empty spec means no admission control. pressure is the
// -tenant-pressure value: 0 = auto (defaultTenantPressure when any
// entry sets a weight), negative = weighted shedding off.
func parseQuotas(spec string, pressure int, reg *metrics.Registry) (core.AdmissionHook, error) {
	if spec == "" {
		return nil, nil
	}
	treg := tenant.NewRegistry()
	hasWeight := false
	for _, entry := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ":")
		if len(parts) < 2 || len(parts) > 4 {
			return nil, fmt.Errorf("bad entry %q, want name:rate[:burst[:weight]]", entry)
		}
		t := tenant.Tenant{Name: parts[0]}
		var err error
		if t.Rate, err = strconv.ParseFloat(parts[1], 64); err != nil {
			return nil, fmt.Errorf("bad rate in %q: %v", entry, err)
		}
		if len(parts) > 2 {
			if t.Burst, err = strconv.ParseFloat(parts[2], 64); err != nil {
				return nil, fmt.Errorf("bad burst in %q: %v", entry, err)
			}
		}
		if len(parts) > 3 {
			if t.Weight, err = strconv.Atoi(parts[3]); err != nil {
				return nil, fmt.Errorf("bad weight in %q: %v", entry, err)
			}
			hasWeight = true
		}
		if err := treg.Register(t); err != nil {
			return nil, err
		}
	}
	switch {
	case pressure == 0 && hasWeight:
		pressure = defaultTenantPressure
	case pressure < 0:
		if hasWeight {
			log.Printf("-tenant-quotas declares weights but -tenant-pressure is negative: weighted shedding is off")
		}
		pressure = 0
	}
	return tenant.NewAdmission(treg, tenant.AdmissionOptions{PressureInflight: pressure, Metrics: reg}), nil
}

// startMemcached boots the memcached front door over a client bound
// to the local instance's membership table. The returned stop
// function closes the listener and drains connections; it is a no-op
// when the flag is unset.
func startMemcached(addr, tenantName string, inst *core.Instance, caller transport.Caller, reg *metrics.Registry) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	cl, err := core.NewLocalClient(inst, caller)
	if err != nil {
		return nil, err
	}
	gw := memcached.New(cl, memcached.Options{Tenant: tenantName, Metrics: reg})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		if err := gw.Serve(ln); err != nil && !errors.Is(err, net.ErrClosed) {
			log.Printf("memcached front door: %v", err)
		}
	}()
	log.Printf("memcached front door on %s (tenant %q)", ln.Addr(), tenantName)
	return func() { gw.Close() }, nil
}

// runJoin performs a dynamic join: bind the address first (peers may
// contact the newcomer the moment the membership delta lands), then
// run the join protocol — fetch table, migrate partitions, broadcast.
func runJoin(cfg core.Config, seed, addr, proto, mcAddr, mcTenant string) {
	var caller transport.Caller
	if proto == "udp" {
		caller = transport.NewUDPClient(transport.UDPClientOptions{Metrics: cfg.Metrics})
	} else {
		caller = transport.NewTCPClient(transport.TCPClientOptions{ConnCache: true, Metrics: cfg.Metrics})
	}
	var hs core.HandlerSwitch
	var ln transport.Listener
	var err error
	if proto == "udp" {
		ln, err = transport.ListenUDP(addr, hs.Handle, transport.WithServerMetrics(cfg.Metrics))
	} else {
		ln, err = transport.ListenTCP(addr, hs.Handle, transport.EventDriven, transport.WithServerMetrics(cfg.Metrics))
	}
	if err != nil {
		log.Fatalf("listen %s: %v", addr, err)
	}
	newcomer := ring.Instance{
		ID:   ring.InstanceID("zht-join-" + addr),
		Addr: ln.Addr(),
		Node: addr,
	}
	inst, err := core.Join(cfg, newcomer, seed, caller, func(i *core.Instance) { hs.Set(i.Handle) })
	if err != nil {
		ln.Close()
		log.Fatalf("join via %s: %v", seed, err)
	}
	t := inst.Table()
	log.Printf("joined as %s: epoch %d, serving %d partitions",
		inst.ID(), t.Epoch, len(t.PartitionsOf(t.IndexOf(inst.ID()))))
	stopGW, err := startMemcached(mcAddr, mcTenant, inst, caller, cfg.Metrics)
	if err != nil {
		log.Fatalf("memcached front door: %v", err)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("departing")
	stopGW()
	if err := core.Depart(inst); err != nil {
		log.Printf("planned departure failed: %v (shutting down anyway)", err)
	}
	ln.Close()
	inst.Drain()
	inst.Close()
}
