// Command zht-sim explores ZHT configurations on the Blue Gene/P
// model (the role the paper's PeerSim simulator played).
//
//	zht-sim -nodes 1048576                 # analytic, 1M nodes
//	zht-sim -nodes 1024 -des -seconds 0.5  # discrete-event cross-check
//	zht-sim -sweep                         # the Figure 11 sweep
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"zht/internal/metrics"
	"zht/internal/sim"
	"zht/internal/storage"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 8192, "physical nodes")
		inst      = flag.Int("instances", 1, "ZHT instances per node")
		replicas  = flag.Int("replicas", 0, "replicas per partition")
		batch     = flag.Int("batch", 1, "ops per message (batching-amortization model)")
		syncRep   = flag.Bool("sync", false, "synchronous replication (ablation)")
		des       = flag.Bool("des", false, "use the discrete-event engine (≤ ~32K instances)")
		seconds   = flag.Float64("seconds", 0.3, "virtual seconds to simulate (DES)")
		seed      = flag.Int64("seed", 1, "DES random seed")
		sweep     = flag.Bool("sweep", false, "print the efficiency sweep to 1M nodes")
		metricsOn = flag.Bool("metrics", false, "record DES completions into a metrics registry and print the zht.client.* snapshot (requires -des)")
		durMode   = flag.String("durability", "async", "modeled WAL mode: none, async, group, or sync (group amortizes one fsync per batch)")
	)
	flag.Parse()

	if *sweep {
		base, err := sim.Analytic(sim.DefaultParams(2, 1))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-12s %-12s %-10s\n", "nodes", "latency(ms)", "Mops/s", "efficiency")
		for _, n := range []int{2, 64, 1024, 8192, 65536, 1 << 20} {
			p := sim.DefaultParams(n, 1)
			r, err := sim.Analytic(p)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10d %-12.3f %-12.2f %.0f%%\n",
				n, r.Latency*1e3, r.Throughput/1e6, sim.Efficiency(r, p, base.Latency)*100)
		}
		return
	}

	p := sim.DefaultParams(*nodes, *inst)
	p.Replicas = *replicas
	p.SyncReplication = *syncRep
	p.BatchSize = *batch
	dur, err2 := storage.ParseDurability(*durMode)
	if err2 != nil {
		log.Fatal(err2)
	}
	p.Durability = dur
	var reg *metrics.Registry
	if *metricsOn {
		if !*des {
			log.Fatal("-metrics requires -des (the analytic model has no per-op completions)")
		}
		reg = metrics.NewRegistry()
	}
	var r sim.Result
	var err error
	engine := "analytic"
	if *des {
		engine = "discrete-event"
		r, err = sim.DiscreteEventObserved(p, *seconds, *seed, reg)
	} else {
		r, err = sim.Analytic(p)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine       %s\n", engine)
	fmt.Printf("nodes        %d × %d instances\n", p.Nodes, p.InstancesPerNode)
	fmt.Printf("latency      %.3f ms\n", r.Latency*1e3)
	fmt.Printf("throughput   %.2f M ops/s\n", r.Throughput/1e6)
	fmt.Printf("avg hops     %.1f\n", r.AvgHops)
	fmt.Printf("nic util     %.0f%%\n", r.NICUtilization*100)
	if reg != nil {
		// Same names a live client emits, so simulated and measured
		// latency distributions line up column for column.
		fmt.Println("--- registry metrics ---")
		if err := reg.Snapshot().WriteText(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
