// Command zht-client talks to a running ZHT deployment.
//
// Usage:
//
//	zht-client -seed HOST:PORT insert KEY VALUE
//	zht-client -seed HOST:PORT lookup KEY
//	zht-client -seed HOST:PORT remove KEY
//	zht-client -seed HOST:PORT append KEY VALUE
//	zht-client -seed HOST:PORT cas KEY OLD NEW
//	zht-client -seed HOST:PORT members
//	zht-client -seed HOST:PORT bench -ops N
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"zht/internal/core"
	"zht/internal/transport"
	"zht/internal/wire"
)

func main() {
	var (
		seed       = flag.String("seed", "127.0.0.1:5500", "address of any live instance")
		proto      = flag.String("proto", "tcp", "transport: tcp or udp")
		partitions = flag.Int("partitions", 1024, "deployment partition count")
		replicas   = flag.Int("replicas", 2, "deployment replica count")
		ops        = flag.Int("ops", 10000, "operations for the bench subcommand")
		levelName  = flag.String("level", "", "consistency level for this op: one, quorum, all (empty = the deployment default)")
	)
	flag.Parse()
	level, err := wire.ParseConsistency(*levelName)
	if err != nil {
		log.Fatalf("-level: %v", err)
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	var caller transport.Caller
	if *proto == "udp" {
		caller = transport.NewUDPClient(transport.UDPClientOptions{})
	} else {
		caller = transport.NewTCPClient(transport.TCPClientOptions{ConnCache: true})
	}
	defer caller.Close()
	cfg := core.Config{NumPartitions: *partitions, Replicas: *replicas}
	c, err := core.NewClientFromSeed(cfg, *seed, caller)
	if err != nil {
		log.Fatalf("connect: %v", err)
	}

	switch args[0] {
	case "insert":
		need(args, 3)
		die(c.InsertWith(args[1], []byte(args[2]), level))
	case "lookup":
		need(args, 2)
		v, err := c.LookupWith(args[1], level)
		if errors.Is(err, core.ErrNotFound) {
			fmt.Println("(not found)")
			os.Exit(1)
		}
		die(err)
		fmt.Printf("%s\n", v)
	case "remove":
		need(args, 2)
		die(c.RemoveWith(args[1], level))
	case "append":
		need(args, 3)
		die(c.AppendWith(args[1], []byte(args[2]), level))
	case "cas":
		need(args, 4)
		cur, err := c.Cas(args[1], []byte(args[2]), []byte(args[3]))
		if errors.Is(err, core.ErrCasMismatch) {
			fmt.Printf("mismatch; current value: %s\n", cur)
			os.Exit(1)
		}
		die(err)
	case "members":
		t := c.Table()
		fmt.Printf("epoch %d, %d partitions, %d instances:\n", t.Epoch, t.NumPartitions, len(t.Instances))
		for i, in := range t.Instances {
			fmt.Printf("  %-12s %-22s %-10s %s (%d partitions)\n",
				in.ID, in.Addr, t.Status[i], in.Node, len(t.PartitionsOf(i)))
		}
	case "bench":
		val := make([]byte, 132)
		start := time.Now()
		for i := 0; i < *ops; i++ {
			k := fmt.Sprintf("bench-%010d", i)
			die(c.Insert(k, val))
			if _, err := c.Lookup(k); err != nil {
				die(err)
			}
			die(c.Remove(k))
		}
		el := time.Since(start)
		total := *ops * 3
		fmt.Printf("%d ops in %s: %.3f ms/op, %.0f ops/s\n",
			total, el.Round(time.Millisecond),
			float64(el.Nanoseconds())/1e6/float64(total),
			float64(total)/el.Seconds())
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", args[0])
		os.Exit(2)
	}
}

func need(args []string, n int) {
	if len(args) < n {
		fmt.Fprintf(os.Stderr, "%s needs %d arguments\n", args[0], n-1)
		os.Exit(2)
	}
}

func die(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
