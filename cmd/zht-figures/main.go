// Command zht-figures regenerates the paper's tables and figures.
//
// Usage:
//
//	zht-figures [-quick] [-fig figNN|tabNN|all]
//
// Each series prints measured rows side by side with the paper's
// reported numbers (see DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded runs).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"zht/internal/figures"
	"zht/internal/metrics"
)

func main() {
	quick := flag.Bool("quick", false, "shrink workloads for a fast pass")
	fig := flag.String("fig", "all", "figure/table id (fig01..fig19, tab01) or 'all'")
	csvDir := flag.String("csv", "", "also write one CSV per series into this directory")
	metricsOn := flag.Bool("metrics", false, "accumulate all runs into one metrics registry and print its snapshot at the end")
	flag.Parse()

	o := figures.Options{Quick: *quick}
	if *metricsOn {
		o.Metrics = metrics.NewRegistry()
	}
	dumpMetrics := func() {
		if o.Metrics == nil {
			return
		}
		fmt.Println("--- registry metrics ---")
		if err := o.Metrics.Snapshot().WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			os.Exit(1)
		}
	}
	emit := func(s *figures.Series) {
		fmt.Println(s.Render())
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "csv:", err)
				os.Exit(1)
			}
			path := fmt.Sprintf("%s/%s.csv", *csvDir, s.ID)
			if err := os.WriteFile(path, []byte(s.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "csv:", err)
				os.Exit(1)
			}
		}
	}
	if *fig == "all" {
		start := time.Now()
		series, err := figures.All(o)
		for _, s := range series {
			emit(s)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("regenerated %d series in %s\n", len(series), time.Since(start).Round(time.Millisecond))
		dumpMetrics()
		return
	}
	gen := figures.ByID(*fig)
	if gen == nil {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
	s, err := gen(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	emit(s)
	dumpMetrics()
}
