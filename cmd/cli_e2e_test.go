// Package cmd_test builds the real binaries and drives a two-server
// TCP deployment through the CLI — the closest thing to the paper's
// operational story that fits in a test.
package cmd_test

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func buildTool(t *testing.T, dir, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Dir = ".."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestServerClientEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	server := buildTool(t, dir, "./cmd/zht-server")
	client := buildTool(t, dir, "./cmd/zht-client")

	a0, a1 := freePort(t), freePort(t)
	peers := a0 + "," + a1
	var procs []*exec.Cmd
	for i, addr := range []string{a0, a1} {
		dataDir := filepath.Join(dir, fmt.Sprintf("data%d", i))
		os.MkdirAll(dataDir, 0o755)
		cmd := exec.Command(server, "-peers", peers, "-index", fmt.Sprint(i), "-data", dataDir, "-partitions", "64")
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		procs = append(procs, cmd)
		_ = addr
	}
	defer func() {
		for _, p := range procs {
			p.Process.Kill()
			p.Wait()
		}
	}()
	// Wait for both servers to accept connections.
	for _, addr := range []string{a0, a1} {
		deadline := time.Now().Add(10 * time.Second)
		for {
			c, err := net.Dial("tcp", addr)
			if err == nil {
				c.Close()
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("server %s never came up", addr)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	run := func(args ...string) string {
		t.Helper()
		full := append([]string{"-seed", a0, "-partitions", "64"}, args...)
		out, err := exec.Command(client, full...).CombinedOutput()
		if err != nil {
			t.Fatalf("zht-client %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	run("insert", "/greeting", "hello")
	if got := strings.TrimSpace(run("lookup", "/greeting")); got != "hello" {
		t.Errorf("lookup = %q", got)
	}
	run("append", "/greeting", " world")
	if got := strings.TrimSpace(run("lookup", "/greeting")); got != "hello world" {
		t.Errorf("lookup after append = %q", got)
	}
	members := run("members")
	if !strings.Contains(members, "2 instances") {
		t.Errorf("members output:\n%s", members)
	}
	run("remove", "/greeting")
	// Removed keys return non-zero: expect the error path.
	out, err := exec.Command(client, "-seed", a0, "-partitions", "64", "lookup", "/greeting").CombinedOutput()
	if err == nil {
		t.Errorf("lookup of removed key succeeded: %s", out)
	}
	// Flags precede the subcommand (standard flag package parsing).
	benchOut, err := exec.Command(client, "-seed", a0, "-partitions", "64", "-ops", "200", "bench").CombinedOutput()
	if err != nil {
		t.Fatalf("bench: %v\n%s", err, benchOut)
	}
	if !strings.Contains(string(benchOut), "600 ops") || !strings.Contains(string(benchOut), "ops/s") {
		t.Errorf("bench output: %s", benchOut)
	}

	// Dynamic join through the CLI: a third server joins via -join
	// and the member list grows to 3.
	a2 := freePort(t)
	joiner := exec.Command(server, "-join", a0, "-addr", a2, "-partitions", "64")
	joinOut, err := joiner.StdoutPipe()
	_ = joinOut
	if err != nil {
		t.Fatal(err)
	}
	if err := joiner.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		joiner.Process.Kill()
		joiner.Wait()
	}()
	deadline := time.Now().Add(15 * time.Second)
	for {
		members := run("members")
		if strings.Contains(members, "3 instances") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("joiner never appeared in membership:\n%s", members)
		}
		time.Sleep(100 * time.Millisecond)
	}
	// Data is still fully reachable after the live join.
	run("insert", "/post-join", "ok")
	if got := strings.TrimSpace(run("lookup", "/post-join")); got != "ok" {
		t.Errorf("lookup after join = %q", got)
	}
}
