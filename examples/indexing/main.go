// Data-indexing example: the paper's §VI future-work idea of "using
// ZHT to index data (not just metadata) based on its content",
// implemented as an inverted index maintained with lock-free appends.
//
// Each document insert appends a posting record under every term key;
// concurrent indexers never take a distributed lock (the same append
// mechanism FusionFS uses for directories).
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"

	"zht"
)

// indexDoc stores the document and appends a posting per term.
func indexDoc(c *zht.Client, id string, text string) error {
	if err := c.Insert("doc:"+id, []byte(text)); err != nil {
		return err
	}
	seen := map[string]bool{}
	for _, term := range strings.Fields(strings.ToLower(text)) {
		term = strings.Trim(term, ".,;:!?")
		if term == "" || seen[term] {
			continue
		}
		seen[term] = true
		if err := c.Append("term:"+term, []byte(id+";")); err != nil {
			return err
		}
	}
	return nil
}

// search returns the ids of documents containing every term.
func search(c *zht.Client, terms ...string) ([]string, error) {
	var result map[string]bool
	for _, term := range terms {
		postings, err := c.Lookup("term:" + strings.ToLower(term))
		if err != nil {
			return nil, nil // a term with no postings means no matches
		}
		ids := map[string]bool{}
		for _, id := range strings.Split(string(postings), ";") {
			if id != "" {
				ids[id] = true
			}
		}
		if result == nil {
			result = ids
			continue
		}
		for id := range result {
			if !ids[id] {
				delete(result, id)
			}
		}
	}
	var out []string
	for id := range result {
		out = append(out, id)
	}
	sort.Strings(out)
	return out, nil
}

func main() {
	d, _, err := zht.BootstrapInproc(zht.Config{NumPartitions: 512, Replicas: 1}, 4)
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	docs := map[string]string{
		"sim-001": "turbulence simulation checkpoint from the climate model",
		"sim-002": "climate model output with ocean turbulence fields",
		"sim-003": "molecular dynamics trajectory for the protein model",
		"sim-004": "checkpoint restart data for molecular simulation",
	}

	// Index concurrently from several "nodes" — appends interleave
	// safely without a distributed lock.
	var wg sync.WaitGroup
	for id, text := range docs {
		wg.Add(1)
		go func(id, text string) {
			defer wg.Done()
			c, err := d.NewClient()
			if err != nil {
				log.Println(err)
				return
			}
			if err := indexDoc(c, id, text); err != nil {
				log.Printf("index %s: %v", id, err)
			}
		}(id, text)
	}
	wg.Wait()

	c, _ := d.NewClient()
	for _, q := range [][]string{
		{"turbulence"},
		{"climate", "model"},
		{"molecular"},
		{"checkpoint"},
		{"climate", "molecular"},
	} {
		hits, err := search(c, q...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("search %-22v -> %v\n", q, hits)
	}
}
