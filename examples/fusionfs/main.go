// FusionFS example: distributed file-system metadata on ZHT.
//
// Reproduces the paper's marquee scenario (§III.I): many clients
// creating files concurrently in ONE shared directory without any
// distributed lock — directory updates ride ZHT's append operation.
package main

import (
	"bytes"
	"fmt"
	"log"
	"sync"
	"time"

	"zht"
	"zht/internal/fusionfs"
	"zht/internal/istore"
)

func main() {
	cfg := zht.Config{NumPartitions: 1024, Replicas: 1}
	d, reg, err := zht.BootstrapInproc(cfg, 8)
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	rootClient, err := d.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	fs, err := fusionfs.New(rootClient)
	if err != nil {
		log.Fatal(err)
	}
	if err := fs.Mkdir("/shared"); err != nil {
		log.Fatal(err)
	}

	// 8 "compute nodes" each create 250 files in the same directory.
	const nodes, filesPerNode = 8, 250
	start := time.Now()
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c, err := d.NewClient()
			if err != nil {
				log.Println(err)
				return
			}
			nodeFS, err := fusionfs.New(c)
			if err != nil {
				log.Println(err)
				return
			}
			for i := 0; i < filesPerNode; i++ {
				path := fmt.Sprintf("/shared/node%02d-file%04d", n, i)
				if err := nodeFS.Create(path); err != nil {
					log.Printf("create %s: %v", path, err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
	elapsed := time.Since(start)

	entries, err := fs.ReadDir("/shared")
	if err != nil {
		log.Fatal(err)
	}
	total := nodes * filesPerNode
	fmt.Printf("created %d files in one directory from %d concurrent clients\n", len(entries), nodes)
	fmt.Printf("no distributed locks: directory updates used ZHT append\n")
	fmt.Printf("%.3f ms per create, %.0f creates/s aggregate\n",
		float64(elapsed.Nanoseconds())/1e6/float64(total),
		float64(total)/elapsed.Seconds())

	// Standard metadata ops still work alongside.
	m, _ := fs.Stat("/shared/node00-file0000")
	fmt.Printf("stat: mode %o, dir=%v\n", m.Mode, m.IsDir)
	if err := fs.Unlink("/shared/node00-file0000"); err != nil {
		log.Fatal(err)
	}
	entries, _ = fs.ReadDir("/shared")
	fmt.Printf("after unlink: %d entries\n", len(entries))

	// File data path: chunks live on the nodes' storage servers,
	// chunk locations in the ZHT metadata record.
	var storeAddrs []string
	for i := 0; i < nodes; i++ {
		cs := istore.NewChunkServer()
		addr := fmt.Sprintf("store-%02d", i)
		if _, err := reg.Listen(addr, cs.Handle); err != nil {
			log.Fatal(err)
		}
		storeAddrs = append(storeAddrs, addr)
	}
	if err := fs.AttachStorage(fusionfs.Storage{Nodes: storeAddrs, Caller: reg.NewClient()}); err != nil {
		log.Fatal(err)
	}
	fs.Create("/shared/results.dat")
	payload := bytes.Repeat([]byte("result-row;"), 20000) // ~220 KB → 4 chunks
	if err := fs.WriteFile("/shared/results.dat", payload); err != nil {
		log.Fatal(err)
	}
	back, err := fs.ReadFile("/shared/results.dat")
	if err != nil {
		log.Fatal(err)
	}
	m, _ = fs.Stat("/shared/results.dat")
	fmt.Printf("wrote and read back %d bytes in %d chunks across %d storage servers\n",
		len(back), len(m.Chunks), nodes)
}
