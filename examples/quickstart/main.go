// Quickstart: boot a 4-instance ZHT deployment in-process and
// exercise the four basic operations plus CAS and broadcast.
package main

import (
	"fmt"
	"log"

	"zht"
)

func main() {
	cfg := zht.Config{NumPartitions: 1024, Replicas: 2}
	d, _, err := zht.BootstrapInproc(cfg, 4)
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	c, err := d.NewClient()
	if err != nil {
		log.Fatal(err)
	}

	// The four basic operations (§III.A).
	if err := c.Insert("/experiments/run-42", []byte(`{"nodes":4,"state":"running"}`)); err != nil {
		log.Fatal(err)
	}
	v, err := c.Lookup("/experiments/run-42")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lookup: %s\n", v)

	// Append: lock-free concurrent modification — multiple writers
	// can extend the same value with no distributed lock.
	for i := 0; i < 3; i++ {
		if err := c.Append("/experiments/run-42/log", []byte(fmt.Sprintf("event-%d;", i))); err != nil {
			log.Fatal(err)
		}
	}
	v, _ = c.Lookup("/experiments/run-42/log")
	fmt.Printf("appended log: %s\n", v)

	if err := c.Remove("/experiments/run-42"); err != nil {
		log.Fatal(err)
	}
	if _, err := c.Lookup("/experiments/run-42"); err != nil {
		fmt.Println("after remove:", err)
	}

	// CAS extension: atomic state machine transitions.
	if _, err := c.Cas("/jobs/7/state", nil, []byte("queued")); err != nil {
		log.Fatal(err)
	}
	if _, err := c.Cas("/jobs/7/state", []byte("queued"), []byte("running")); err != nil {
		log.Fatal(err)
	}
	v, _ = c.Lookup("/jobs/7/state")
	fmt.Printf("job state after CAS chain: %s\n", v)

	// Broadcast extension: deliver a config value to every instance
	// via the spanning tree.
	if err := c.Broadcast("cluster/epoch-config", []byte("v2")); err != nil {
		log.Fatal(err)
	}
	d.Drain()
	n := 0
	for _, in := range d.Instances() {
		if _, ok := in.BroadcastValue("cluster/epoch-config"); ok {
			n++
		}
	}
	fmt.Printf("broadcast reached %d/%d instances\n", n, d.Size())
}
