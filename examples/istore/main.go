// IStore example: erasure-coded object storage with chunk metadata in
// ZHT (§V.B). Stores an object 4-of-8, kills two chunk nodes, and
// retrieves it anyway.
package main

import (
	"bytes"
	"fmt"
	"log"

	"zht"
	"zht/internal/istore"
)

func main() {
	// ZHT deployment for chunk metadata.
	cfg := zht.Config{NumPartitions: 256, Replicas: 1}
	d, reg, err := zht.BootstrapInproc(cfg, 4)
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	meta, err := d.NewClient()
	if err != nil {
		log.Fatal(err)
	}

	// 8 chunk servers on the same in-process network.
	var addrs []string
	for i := 0; i < 8; i++ {
		cs := istore.NewChunkServer()
		addr := fmt.Sprintf("chunk-%d", i)
		if _, err := reg.Listen(addr, cs.Handle); err != nil {
			log.Fatal(err)
		}
		addrs = append(addrs, addr)
	}

	// 4-of-8 information dispersal: any 4 chunks reconstruct.
	store, err := istore.New(meta, 4, addrs, reg.NewClient())
	if err != nil {
		log.Fatal(err)
	}

	payload := bytes.Repeat([]byte("simulation-checkpoint-data/"), 4096)
	if err := store.Put("checkpoints/step-1000", payload); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %d bytes as 8 chunks on 8 nodes (4 needed)\n", len(payload))

	// Fail two chunk nodes.
	reg.SetDown("chunk-1", true)
	reg.SetDown("chunk-5", true)
	fmt.Println("killed chunk-1 and chunk-5")

	got, err := store.Get("checkpoints/step-1000")
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		log.Fatal("reconstruction mismatch")
	}
	fmt.Printf("reconstructed %d bytes from the surviving chunks\n", len(got))

	// A third failure exceeds 4-of-8 only if it removes a needed
	// chunk — kill two more to make recovery impossible.
	reg.SetDown("chunk-0", true)
	reg.SetDown("chunk-2", true)
	reg.SetDown("chunk-3", true)
	if _, err := store.Get("checkpoints/step-1000"); err != nil {
		fmt.Println("with 5 nodes down (3 left < k=4), retrieval fails as expected:", err)
	}

	fmt.Printf("ZHT metadata operations issued: %d\n", store.MetaOps())
}
