// Membership example: dynamic joins, a planned departure, and an
// unplanned failure with replica failover — all under live client
// traffic (§III.C, §III.H).
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"zht"
)

func main() {
	cfg := zht.Config{NumPartitions: 1024, Replicas: 2}
	d, reg, err := zht.BootstrapInproc(cfg, 4)
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	c, err := d.NewClient()
	if err != nil {
		log.Fatal(err)
	}

	// Seed data.
	const keys = 2000
	for i := 0; i < keys; i++ {
		if err := c.Insert(fmt.Sprintf("key-%06d", i), []byte(fmt.Sprintf("value-%06d", i))); err != nil {
			log.Fatal(err)
		}
	}
	d.Drain()
	fmt.Printf("bootstrap: %d instances, epoch %d, %d keys\n", d.Size(), c.Table().Epoch, keys)

	// Background traffic while membership changes.
	var stop atomic.Bool
	var bgOps, bgErrs atomic.Int64
	go func() {
		lc, _ := d.NewClient()
		for i := 0; !stop.Load(); i++ {
			if err := lc.Insert(fmt.Sprintf("live-%08d", i), []byte("x")); err != nil {
				bgErrs.Add(1)
			}
			bgOps.Add(1)
		}
	}()

	// Dynamic join: the newcomer relieves the most-loaded node of
	// half its partitions — whole-partition moves, no rehashing.
	start := time.Now()
	joined, err := d.Join(zht.Endpoint{Addr: "zht-join-a", Node: "node-new-a"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("join: %s in %s, now %d instances, epoch %d, newcomer holds %d keys\n",
		joined.ID(), time.Since(start).Round(time.Millisecond), d.Size(),
		joined.Epoch(), joined.LocalKeys())

	// Planned departure: partitions migrate to ring neighbours first.
	start = time.Now()
	if err := d.Depart(1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned departure in %s, now %d instances\n",
		time.Since(start).Round(time.Millisecond), d.Size())

	// Unplanned failure: kill an instance; clients detect it, report
	// to a manager, and reads fail over to replicas.
	victim := d.Instance(0)
	reg.SetDown(victim.Addr(), true)
	fmt.Printf("killed %s without warning\n", victim.ID())

	ok := 0
	for i := 0; i < keys; i += 100 {
		v, err := c.Lookup(fmt.Sprintf("key-%06d", i))
		if err == nil && string(v) == fmt.Sprintf("value-%06d", i) {
			ok++
		}
	}
	fmt.Printf("post-failure sample reads: %d/%d served (replicas answered for the dead node)\n", ok, keys/100)

	stop.Store(true)
	time.Sleep(10 * time.Millisecond)
	fmt.Printf("background traffic during all of this: %d ops, %d errors\n", bgOps.Load(), bgErrs.Load())
	t := c.Table()
	fmt.Printf("final membership epoch %d with %d alive instances\n", t.Epoch, t.AliveCount())
}
