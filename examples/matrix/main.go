// MATRIX example: many-task computing with adaptive work stealing and
// task state in ZHT (§V.C). Submits the whole workload to ONE node
// and shows the other nodes stealing it into balance.
package main

import (
	"fmt"
	"log"
	"time"

	"zht"
	"zht/internal/matrix"
	"zht/internal/transport"
)

func main() {
	// ZHT tracks task status.
	cfg := zht.Config{NumPartitions: 256, Replicas: 0}
	d, _, err := zht.BootstrapInproc(cfg, 2)
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	zc, err := d.NewClient()
	if err != nil {
		log.Fatal(err)
	}

	// 8 MATRIX nodes, 2 executor workers each.
	reg := transport.NewRegistry()
	cluster, err := matrix.NewCluster(8, matrix.NodeOptions{Workers: 2}, zc,
		func(addr string, h transport.Handler) (transport.Listener, error) {
			return reg.Listen(addr, h)
		}, reg.NewClient())
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	// 1000 tasks of 2 ms each, all dumped on node 0 — the worst-case
	// imbalance work stealing exists to fix.
	tasks := matrix.MakeSleepTasks(1000, 2*time.Millisecond)
	makespan, eff, err := cluster.RunWorkload(tasks, "single", 2*time.Minute)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("1000 × 2ms tasks submitted to ONE node, run by 8 nodes × 2 workers\n")
	fmt.Printf("makespan %.0f ms, efficiency %.0f%%\n", float64(makespan.Nanoseconds())/1e6, eff*100)
	fmt.Println("\nper-node execution counts (stealing spread the load):")
	for i, nd := range cluster.Nodes {
		fmt.Printf("  node %d: executed %4d, had %4d stolen from it\n", i, nd.Executed(), nd.Stolen())
	}

	// Task status lives in ZHT: any client can observe it.
	s, err := cluster.TaskStatus(tasks[0].ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nZHT status record for %s: %s\n", tasks[0].ID, s)
}
