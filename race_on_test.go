//go:build race

package zht_test

// raceEnabled reports whether this binary was built with -race; the
// alloc-budget gate skips itself then, because race instrumentation
// adds allocations the budgets do not model.
const raceEnabled = true
